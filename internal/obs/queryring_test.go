package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestQueryRingEviction(t *testing.T) {
	r := NewQueryRing(3)
	r.now = func() time.Time { return time.Unix(1700000000, 0) }
	for i := 0; i < 5; i++ {
		r.Record(QueryRecord{Query: strings.Repeat("q", i + 1)})
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	snap := r.Snapshot()
	// Newest-first: queries of length 5, 4, 3.
	for i, wantLen := range []int{5, 4, 3} {
		if len(snap[i].Query) != wantLen {
			t.Errorf("snapshot[%d].Query len = %d, want %d", i, len(snap[i].Query), wantLen)
		}
	}
	if snap[0].Time == "" {
		t.Error("timestamp not filled")
	}
}

func TestQueryRingNilAndTruncation(t *testing.T) {
	var nilRing *QueryRing
	nilRing.Record(QueryRecord{Query: "x"}) // must not panic
	if nilRing.Snapshot() != nil || nilRing.Len() != 0 {
		t.Error("nil ring not empty")
	}
	r := NewQueryRing(0) // defaults to 128
	r.Record(QueryRecord{Query: strings.Repeat("v", maxSlowQueryLen+100)})
	if q := r.Snapshot()[0].Query; !strings.HasSuffix(q, "...(truncated)") {
		t.Error("oversized query not truncated")
	}
}

func TestQueryRingHandler(t *testing.T) {
	r := NewQueryRing(4)
	r.Record(QueryRecord{
		Source: "server", Plan: "gather", Rows: 7, WallMS: 1.5,
		Shards: []ShardCall{{Shard: 0, Rows: 4, Attempts: 1}, {Shard: 1, Rows: 3, Attempts: 2, Retries: 1}},
		Query:  "SELECT * WHERE { ?s ?p ?o }",
	})
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var out []QueryRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Plan != "gather" || len(out[0].Shards) != 2 || out[0].Shards[1].Retries != 1 {
		t.Fatalf("unexpected payload: %+v", out)
	}

	var nilRing *QueryRing
	rec = httptest.NewRecorder()
	nilRing.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/queries", nil))
	if rec.Code != 404 {
		t.Fatalf("nil ring status = %d, want 404", rec.Code)
	}
}

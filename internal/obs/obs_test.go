package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "help"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(3)
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("errs_total", "h", L("kind", "retryable"))
	b := r.Counter("errs_total", "h", L("kind", "permanent"))
	if a == b {
		t.Fatal("different label values returned the same series")
	}
	// Label order must not matter for identity.
	x := r.Counter("multi_total", "h", L("a", "1"), L("b", "2"))
	y := r.Counter("multi_total", "h", L("b", "2"), L("a", "1"))
	if x != y {
		t.Fatal("label order changed series identity")
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	// Prometheus le semantics: a value exactly on a bound belongs to
	// that bound's bucket.
	h.Observe(0.05) // le=0.1
	h.Observe(0.1)  // le=0.1 (on the boundary)
	h.Observe(0.5)  // le=1
	h.Observe(1.0)  // le=1 (on the boundary)
	h.Observe(10.0) // le=10
	h.Observe(99)   // +Inf
	cum, total := h.snapshot()
	if want := []int64{2, 4, 5}; cum[0] != want[0] || cum[1] != want[1] || cum[2] != want[2] {
		t.Fatalf("cumulative buckets = %v, want %v", cum, want)
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+10+99; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds did not panic")
		}
	}()
	r.Gauge("clash", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "h")
}

// TestNilFastPathAllocs is the contract the instrumented hot paths
// rely on: with metrics disabled (nil registry → nil metrics), every
// operation is allocation-free.
func TestNilFastPathAllocs(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *SlowLog
	var sp *Span
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c = r.Counter("x_total", "h")
		g = r.Gauge("x", "h")
		h = r.Histogram("x_seconds", "h", nil)
		c.Inc()
		c.Add(2)
		g.Set(1)
		h.Observe(0.5)
		h.ObserveDuration(time.Millisecond)
		if l.Slow(time.Hour) {
			t.Fatal("nil slow log reported slow")
		}
		sp = SpanFrom(ctx)
		sp.Start("child").End()
		sp.Event("x")
		ctx2, s2 := StartSpan(ctx, "y")
		if s2 != nil || ctx2 != ctx {
			t.Fatal("StartSpan without a parent span must be a no-op")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled fast path allocates %.1f per op, want 0", allocs)
	}
}

func TestSlowLog(t *testing.T) {
	var buf strings.Builder
	l := NewSlowLog(&buf, 100*time.Millisecond)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC) }
	l.Record(SlowQuery{Source: "test", WallMS: 50, Query: "SELECT fast"})
	if buf.Len() != 0 {
		t.Fatalf("fast query logged: %q", buf.String())
	}
	l.Record(SlowQuery{
		Source: "test", Step: "witness", WallMS: 250, Rows: 3,
		PhaseMS: map[string]float64{"join": 200.5},
		Query:   "SELECT slow",
	})
	line := buf.String()
	for _, want := range []string{
		`"time":"2026-08-05T12:00:00Z"`, `"source":"test"`, `"step":"witness"`,
		`"wall_ms":250`, `"rows":3`, `"join":200.5`, `"query":"SELECT slow"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log line missing %s: %s", want, line)
		}
	}
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("entry is not exactly one line: %q", line)
	}
	if l.Logged() != 1 {
		t.Fatalf("Logged = %d, want 1", l.Logged())
	}
}

func TestSlowLogTruncatesQuery(t *testing.T) {
	var buf strings.Builder
	l := NewSlowLog(&buf, 0)
	l.Record(SlowQuery{Source: "test", WallMS: 1, Query: strings.Repeat("x", 3*maxSlowQueryLen)})
	if !strings.Contains(buf.String(), "...(truncated)") {
		t.Fatal("oversized query was not truncated")
	}
}

func TestPhaseMS(t *testing.T) {
	out := PhaseMS(map[string]time.Duration{
		"join":  150 * time.Millisecond,
		"parse": 0, // dropped
	})
	if len(out) != 1 || out["join"] != 150 {
		t.Fatalf("PhaseMS = %v", out)
	}
	if PhaseMS(nil) != nil {
		t.Fatal("PhaseMS(nil) != nil")
	}
}

package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry covering every
// metric kind, label escaping, and histogram expansion.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_queries_total", "Total queries accepted.").Add(42)
	r.Counter("app_errors_total", "Errors by kind.", L("kind", "retryable")).Add(3)
	r.Counter("app_errors_total", "Errors by kind.", L("kind", "permanent")).Add(1)
	r.Gauge("app_inflight", "In-flight requests.").Set(5)
	r.GaugeFunc("app_pool_workers", "Active pool workers.", func() float64 { return 2 })
	h := r.Histogram("app_query_seconds", "Query latency.", []float64{0.1, 1, 10}, L("client", `quo"te\back`))
	h.Observe(0.05)
	h.Observe(0.1)
	h.Observe(3)
	h.Observe(50)
	return r
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestPromFormatInvariants checks structural properties independent
// of the golden file, so a careless -update cannot bless a malformed
// format: TYPE precedes samples, families are sorted, histograms are
// cumulative and end at +Inf.
func TestPromFormatInvariants(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	seenType := map[string]bool{}
	var lastFamily string
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# TYPE "):
			parts := strings.Fields(ln)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", ln)
			}
			name := parts[2]
			if name < lastFamily {
				t.Errorf("families out of order: %q after %q", name, lastFamily)
			}
			lastFamily = name
			seenType[name] = true
		case strings.HasPrefix(ln, "# HELP "), ln == "":
		default:
			name := ln
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if !seenType[name] && !seenType[base] {
				t.Errorf("sample %q before its TYPE line", ln)
			}
		}
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Error("histogram missing +Inf bucket")
	}
	if !strings.Contains(out, `client="quo\"te\\back"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	// Cumulative check: later buckets include earlier ones (0.05 and
	// 0.1 land in le=0.1; 3 pushes le=10 to 3).
	if !strings.Contains(out, `le="0.1"} 2`) || !strings.Contains(out, `le="10"} 3`) {
		t.Errorf("histogram buckets not cumulative:\n%s", out)
	}
}

func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "app_queries_total 42") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}

	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 404 {
		t.Fatalf("nil registry status = %d, want 404", rec.Code)
	}
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the content type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promQuantiles are the estimated quantiles every histogram family
// additionally exposes as a synthetic <name>_quantile gauge family.
var promQuantiles = []float64{0.5, 0.95, 0.99}

// WriteProm writes every metric in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with one
// # HELP and # TYPE line, series sorted by label set. Histograms
// expand into cumulative _bucket{le=...} series plus _sum and _count,
// and additionally into a <name>_quantile gauge family carrying the
// p50/p95/p99 estimates (linear interpolation within the buckets, the
// histogram_quantile estimate precomputed server-side). A nil registry
// writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		// Synthetic quantile family per histogram, merged into the sorted
		// name order so the exposition stays name-sorted. A real family
		// already holding the derived name wins.
		if f.kind == kindHistogram && r.families[name+"_quantile"] == nil {
			names = append(names, name+"_quantile")
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f == nil {
			writeQuantileFamily(bw, name, r.families[strings.TrimSuffix(name, "_quantile")])
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.instances))
		for k := range f.instances {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			writeInstance(bw, f, f.instances[k])
		}
	}
	r.mu.Unlock()
	return bw.Flush()
}

// writeQuantileFamily writes the estimated-quantile gauges derived
// from one histogram family.
func writeQuantileFamily(w io.Writer, name string, f *family) {
	fmt.Fprintf(w, "# HELP %s Estimated quantiles of %s.\n", name, f.name)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	keys := make([]string, 0, len(f.instances))
	for k := range f.instances {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		in := f.instances[k]
		for _, q := range promQuantiles {
			labels := append(append([]Label{}, in.labels...), L("quantile", formatFloat(q)))
			fmt.Fprintf(w, "%s%s %s\n", name, labelString(labels, ""), formatFloat(in.h.Quantile(q)))
		}
	}
}

func writeInstance(w io.Writer, f *family, in *instance) {
	switch f.kind {
	case kindCounter:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(in.labels, ""), formatFloat(float64(in.c.Value())))
	case kindGauge:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(in.labels, ""), formatFloat(float64(in.g.Value())))
	case kindGaugeFunc:
		fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(in.labels, ""), formatFloat(in.fn()))
	case kindHistogram:
		cum, total := in.h.snapshot()
		for i, bound := range in.h.bounds {
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(in.labels, formatFloat(bound)), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(in.labels, "+Inf"), total)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(in.labels, ""), formatFloat(in.h.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(in.labels, ""), total)
	}
}

// labelString renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label. Empty label sets render as "".
func labelString(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler returns an http.Handler serving the exposition (the
// /metrics endpoint). A nil registry serves 404.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", PromContentType)
		_ = r.WriteProm(w)
	})
}

package obs

import (
	"sort"
	"strings"
)

// PromInstance is one scrape target's contribution to a fleet merge:
// its last good snapshot (nil if it was never scraped successfully)
// plus staleness bookkeeping.
type PromInstance struct {
	Instance   string        // label value, e.g. "shard0/replica1"
	Snapshot   *PromSnapshot // last good scrape; merged even when stale
	Stale      bool          // last scrape attempt failed
	AgeSeconds float64       // seconds since the last good scrape; <0 when never scraped
}

// MergeOptions tunes MergeProm.
type MergeOptions struct {
	// Passthrough names families that are NOT merged: each instance's
	// series are emitted verbatim with an `instance` label appended
	// (per-replica gauges like replica_up or process uptime, where a
	// fleet-wide max would be meaningless).
	Passthrough []string
	// SumGauges names gauge families merged by sum instead of the
	// default max (e.g. active-worker counts, where the fleet total is
	// the meaningful reading).
	SumGauges []string
	// MetaPrefix prefixes the synthesized staleness families
	// (<prefix>_instance_up, <prefix>_scrape_age_seconds). Defaults to
	// "re2xolap_fleet".
	MetaPrefix string
}

// MergeProm merges per-instance expositions into one fleet view:
//
//   - counters sum across instances;
//   - histograms sum bucket-wise (union of bounds, cumulative counts
//     converted to per-bucket deltas and re-cumulated), and their
//     synthetic <name>_quantile gauge families are dropped and
//     recomputed from the merged buckets, so a fleet quantile reads
//     as if one process had seen every observation;
//   - gauges (and untyped series) take the max, or the sum for
//     families named in SumGauges;
//   - Passthrough families keep one series per instance with an
//     `instance` label appended;
//   - two gauge families mark staleness: <prefix>_instance_up (1 when
//     the last scrape succeeded) and <prefix>_scrape_age_seconds
//     (seconds since the last good scrape, -1 when never scraped).
//     A stale instance's last good snapshot still contributes, so a
//     dead replica's counters do not vanish from fleet totals.
//
// The merge is deterministic and commutative: instances are sorted by
// name before merging and the output is name-sorted with label-sorted
// series, so merge(A,B) and merge(B,A) serialize byte-identically.
func MergeProm(instances []PromInstance, opt MergeOptions) *PromSnapshot {
	insts := make([]PromInstance, len(instances))
	copy(insts, instances)
	sort.Slice(insts, func(i, j int) bool { return insts[i].Instance < insts[j].Instance })

	prefix := opt.MetaPrefix
	if prefix == "" {
		prefix = "re2xolap_fleet"
	}
	passthrough := map[string]bool{}
	for _, n := range opt.Passthrough {
		passthrough[n] = true
	}
	sumGauges := map[string]bool{}
	for _, n := range opt.SumGauges {
		sumGauges[n] = true
	}

	// Quantile families derived from non-passthrough histograms are
	// dropped and recomputed from the merged buckets.
	drop := map[string]bool{}
	for _, in := range insts {
		if in.Snapshot == nil {
			continue
		}
		for _, f := range in.Snapshot.Families {
			if f.Kind == "histogram" && len(f.Hists) > 0 && !passthrough[f.Name] {
				drop[f.Name+"_quantile"] = true
			}
		}
	}

	type scalarAcc struct {
		labels []Label
		value  float64
		seen   bool
	}
	type histAcc struct {
		labels []Label
		delta  map[float64]float64 // finite bound -> summed per-bucket delta
		inf    float64             // summed overflow beyond the last bound
		sum    float64
	}
	type famAcc struct {
		name, help, kind string
		scalars          map[string]*scalarAcc
		scalarOrder      []string
		hists            map[string]*histAcc
		histOrder        []string
		pass             *PromFamily // passthrough families assemble directly
	}
	fams := map[string]*famAcc{}
	famOf := func(f *PromFamily) *famAcc {
		a := fams[f.Name]
		if a == nil {
			a = &famAcc{name: f.Name, help: f.Help, kind: f.Kind}
			if passthrough[f.Name] {
				a.pass = &PromFamily{Name: f.Name, Help: f.Help, Kind: f.Kind}
			}
			fams[f.Name] = a
		}
		if a.help == "" {
			a.help = f.Help
		}
		if a.kind == "untyped" && f.Kind != "untyped" {
			a.kind = f.Kind
		}
		return a
	}

	for _, in := range insts {
		if in.Snapshot == nil {
			continue
		}
		instLabel := L("instance", in.Instance)
		for _, f := range in.Snapshot.Families {
			if drop[f.Name] {
				continue
			}
			a := famOf(f)
			if a.pass != nil {
				for _, sm := range f.Samples {
					labels := append(append([]Label{}, sm.Labels...), instLabel)
					a.pass.Samples = append(a.pass.Samples, PromSample{Labels: labels, Value: sm.Value})
				}
				for _, h := range f.Hists {
					hc := h
					hc.Labels = append(append([]Label{}, h.Labels...), instLabel)
					a.pass.Hists = append(a.pass.Hists, hc)
				}
				continue
			}
			for _, sm := range f.Samples {
				key := labelKey(sm.Labels)
				sa := a.scalars[key]
				if sa == nil {
					if a.scalars == nil {
						a.scalars = map[string]*scalarAcc{}
					}
					sa = &scalarAcc{labels: sortedLabels(sm.Labels)}
					a.scalars[key] = sa
					a.scalarOrder = append(a.scalarOrder, key)
				}
				switch {
				case !sa.seen:
					sa.value, sa.seen = sm.Value, true
				case f.Kind == "counter" || sumGauges[f.Name]:
					sa.value += sm.Value
				default: // gauge / untyped: max
					if sm.Value > sa.value {
						sa.value = sm.Value
					}
				}
			}
			for _, h := range f.Hists {
				key := labelKey(h.Labels)
				ha := a.hists[key]
				if ha == nil {
					if a.hists == nil {
						a.hists = map[string]*histAcc{}
					}
					ha = &histAcc{labels: sortedLabels(h.Labels), delta: map[float64]float64{}}
					a.hists[key] = ha
					a.histOrder = append(a.histOrder, key)
				}
				var prev float64
				for i, b := range h.Bounds {
					ha.delta[b] += h.Cum[i] - prev
					prev = h.Cum[i]
				}
				ha.inf += h.Count - prev
				ha.sum += h.Sum
			}
		}
	}

	out := &PromSnapshot{}
	for _, a := range fams {
		if a.pass != nil {
			out.Families = append(out.Families, a.pass)
			continue
		}
		f := &PromFamily{Name: a.name, Help: a.help, Kind: a.kind}
		sort.Strings(a.scalarOrder)
		for _, key := range a.scalarOrder {
			sa := a.scalars[key]
			f.Samples = append(f.Samples, PromSample{Labels: sa.labels, Value: sa.value})
		}
		sort.Strings(a.histOrder)
		for _, key := range a.histOrder {
			ha := a.hists[key]
			h := PromHist{Labels: ha.labels, Sum: ha.sum}
			for b := range ha.delta {
				h.Bounds = append(h.Bounds, b)
			}
			sort.Float64s(h.Bounds)
			var run float64
			h.Cum = make([]float64, len(h.Bounds))
			for i, b := range h.Bounds {
				run += ha.delta[b]
				h.Cum[i] = run
			}
			h.Count = run + ha.inf
			f.Hists = append(f.Hists, h)
		}
		out.Families = append(out.Families, f)
		// Recompute the synthetic quantile family from merged buckets.
		if a.kind == "histogram" && len(f.Hists) > 0 {
			q := &PromFamily{
				Name: a.name + "_quantile",
				Help: "Estimated quantiles of " + a.name + ".",
				Kind: "gauge",
			}
			for i := range f.Hists {
				h := &f.Hists[i]
				for _, p := range promQuantiles {
					labels := append(append([]Label{}, h.Labels...), L("quantile", formatFloat(p)))
					q.Samples = append(q.Samples, PromSample{
						Labels: labels,
						Value:  bucketQuantile(h.Bounds, h.Cum, h.Count, p),
					})
				}
			}
			out.Families = append(out.Families, q)
		}
	}

	// Staleness markers.
	up := &PromFamily{
		Name: prefix + "_instance_up",
		Help: "Whether the last /metrics scrape of this instance succeeded.",
		Kind: "gauge",
	}
	age := &PromFamily{
		Name: prefix + "_scrape_age_seconds",
		Help: "Seconds since the last successful scrape of this instance (-1 when never scraped).",
		Kind: "gauge",
	}
	for _, in := range insts {
		labels := []Label{L("instance", in.Instance)}
		v := 0.0
		if !in.Stale && in.Snapshot != nil {
			v = 1
		}
		up.Samples = append(up.Samples, PromSample{Labels: labels, Value: v})
		age.Samples = append(age.Samples, PromSample{Labels: labels, Value: in.AgeSeconds})
	}
	out.Families = append(out.Families, up, age)

	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	return out
}

func sortedLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// FleetMetaFamily reports whether name is one of the staleness
// families MergeProm synthesizes (used by tests and the dashboard to
// separate fleet bookkeeping from merged process metrics).
func FleetMetaFamily(name string) bool {
	return strings.HasSuffix(name, "_instance_up") || strings.HasSuffix(name, "_scrape_age_seconds")
}

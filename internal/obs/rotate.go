package obs

import (
	"os"
	"sync"
	"time"
)

// RotatingWriter is a size-capped append-only file writer with exactly
// one rotated generation: when a write would push the file past
// MaxBytes, the current file is renamed to <path>.1 (replacing any
// previous .1) and a fresh file is started. Worst-case disk use is
// therefore ~2×MaxBytes, so a long-lived shard's slow-query log cannot
// fill the disk. Writes are line-granular: a single Write is never
// split across the rotation boundary. Safe for concurrent use.
type RotatingWriter struct {
	mu   sync.Mutex
	path string
	max  int64
	f    *os.File
	size int64
}

// DefaultSlowLogMaxBytes caps the slow-query log at 64 MiB per
// generation when no explicit cap is configured.
const DefaultSlowLogMaxBytes = 64 << 20

// NewRotatingWriter opens (appending) or creates path with the given
// per-generation byte cap (<=0 means DefaultSlowLogMaxBytes).
func NewRotatingWriter(path string, maxBytes int64) (*RotatingWriter, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSlowLogMaxBytes
	}
	w := &RotatingWriter{path: path, max: maxBytes}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *RotatingWriter) open() error {
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, st.Size()
	return nil
}

// Write appends p, rotating first if the file would exceed the cap.
// An entry larger than the cap itself is still written whole (after a
// rotation), never truncated or split.
func (w *RotatingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		if err := w.open(); err != nil {
			return 0, err
		}
	}
	if w.size > 0 && w.size+int64(len(p)) > w.max {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	n, err := w.f.Write(p)
	w.size += int64(n)
	return n, err
}

// rotate is called with the lock held.
func (w *RotatingWriter) rotate() error {
	w.f.Close()
	w.f = nil
	if err := os.Rename(w.path, w.path+".1"); err != nil && !os.IsNotExist(err) {
		return err
	}
	return w.open()
}

// Close closes the current file; later writes reopen it.
func (w *RotatingWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// NewRotatingSlowLog is the common wiring: a slow-query log appending
// JSON lines to path, size-capped with one .1 generation.
func NewRotatingSlowLog(path string, threshold time.Duration, maxBytes int64) (*SlowLog, *RotatingWriter, error) {
	w, err := NewRotatingWriter(path, maxBytes)
	if err != nil {
		return nil, nil, err
	}
	return NewSlowLog(w, threshold), w, nil
}

// Package obs is the stdlib-only observability substrate: a named
// metric registry (atomic counters, gauges, fixed-bucket latency
// histograms) with Prometheus text-format exposition, a per-query
// span-tree trace, and a structured slow-query log.
//
// Two design rules keep the hot path honest:
//
//   - Every metric method is nil-safe and allocation-free. Code holds
//     a *Counter (etc.) obtained once at construction; when metrics
//     are disabled the pointer is nil and each call is a single
//     predictable branch. There is no global registry — a nil
//     *Registry means "off".
//   - Registration (Counter, Gauge, Histogram) takes a lock and may
//     allocate; it happens at construction time, never per query.
//     Callers must cache the returned pointer.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value metric dimension. Series with the same
// metric name but different label values are distinct instances of one
// family and share HELP/TYPE in the exposition.
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter ignores all operations.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are a programming error but not checked
// on the hot path).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The zero value is ready
// to use; a nil *Gauge ignores all operations.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the value by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// LatencyBuckets is the default histogram bucketing for query
// latencies, in seconds: 0.5ms up to 60s, roughly logarithmic.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations into fixed cumulative-at-exposition
// buckets, tracking the running sum (Prometheus histogram semantics:
// a value lands in the first bucket whose upper bound is >= it). The
// bucket layout is immutable after construction; observation is
// lock-free. A nil *Histogram ignores all operations.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []atomic.Int64
	inf    atomic.Int64 // observations above the last bound
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a standalone histogram (most callers get one
// from a Registry instead). bounds must be strictly increasing; nil
// means LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v, i.e. the le bucket the value belongs to.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution from the fixed buckets by linear interpolation within
// the bucket holding the target rank — the same estimate a Prometheus
// server's histogram_quantile computes. A rank landing in the +Inf
// bucket clamps to the last finite bound (histogram_quantile
// semantics). Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum, total := h.snapshot()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	fcum := make([]float64, len(cum))
	for i, c := range cum {
		fcum[i] = float64(c)
	}
	return bucketQuantile(h.bounds, fcum, float64(total), q)
}

// bucketQuantile estimates the q-quantile from cumulative bucket
// counts over the given finite upper bounds, with total including the
// +Inf bucket. It is the shared core of Histogram.Quantile and of the
// fleet merge layer, which recomputes quantiles from summed buckets;
// both must agree so a merged exposition is indistinguishable from a
// single process having seen all observations.
func bucketQuantile(bounds, cum []float64, total, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	for i, c := range cum {
		if c >= rank {
			lower := 0.0
			var prev float64
			if i > 0 {
				lower = bounds[i-1]
				prev = cum[i-1]
			}
			inBucket := c - prev
			if inBucket == 0 {
				return bounds[i]
			}
			return lower + (bounds[i]-lower)*(rank-prev)/inBucket
		}
	}
	return bounds[len(bounds)-1]
}

// snapshot returns cumulative bucket counts aligned with bounds plus
// the +Inf total, consistent enough for exposition (each counter is
// read atomically; scrapes racing observations may be off by the
// in-flight ones, which Prometheus tolerates).
func (h *Histogram) snapshot() (cum []int64, total int64) {
	cum = make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run + h.inf.Load()
}

// metricKind discriminates what a family holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// instance is one labeled series within a family.
type instance struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name, help string
	kind       metricKind
	instances  map[string]*instance // keyed by serialized sorted labels
}

// Registry is a named collection of metrics. A nil *Registry is the
// disabled state: every lookup returns nil, and nil metrics no-op, so
// instrumented code needs no separate "metrics off" branch. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey serializes labels (sorted by key) into a map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b []byte
	for _, l := range sorted {
		b = append(b, l.Key...)
		b = append(b, 0xff)
		b = append(b, l.Value...)
		b = append(b, 0xfe)
	}
	return string(b)
}

// lookup returns (creating if needed) the instance for name+labels,
// enforcing kind consistency. Mis-registering the same name as two
// kinds is a programming error and panics.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label) *instance {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, instances: map[string]*instance{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	in := f.instances[key]
	if in == nil {
		sorted := make([]Label, len(labels))
		copy(sorted, labels)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		in = &instance{labels: sorted}
		f.instances[key] = in
	}
	return in
}

// validName reports whether name is a legal Prometheus metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter returns the counter for name+labels, creating it on first
// use. Subsequent calls with the same name+labels return the same
// *Counter. A nil registry returns nil (which no-ops).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	in := r.lookup(name, help, kindCounter, labels)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	in := r.lookup(name, help, kindGauge, labels)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time (for values a subsystem already tracks, e.g. pool
// occupancy or store size). Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	in := r.lookup(name, help, kindGaugeFunc, labels)
	in.fn = fn
}

// Histogram returns the histogram for name+labels, creating it with
// the given bucket upper bounds on first use (nil means
// LatencyBuckets). The bucket layout of an existing histogram is not
// changed by later calls.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	in := r.lookup(name, help, kindHistogram, labels)
	if in.h == nil {
		in.h = NewHistogram(bounds)
	}
	return in.h
}

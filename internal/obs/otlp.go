package obs

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// OTLP/JSON export: an encoder from Trace span trees to the
// OpenTelemetry OTLP/JSON trace format (the protojson rendering of
// ExportTraceServiceRequest), built on encoding/json only. Any
// OTLP/HTTP collector — or a file shipped to one — can ingest the
// output. Per protojson conventions, 64-bit nanosecond timestamps are
// JSON strings and span/trace IDs are hex.

// otlpKeyValue is an OTLP attribute.
type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue string `json:"stringValue"`
}

type otlpEvent struct {
	TimeUnixNano string `json:"timeUnixNano"`
	Name         string `json:"name"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Events            []otlpEvent    `json:"events,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpRequest struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// spanKindInternal is the OTLP SPAN_KIND_INTERNAL enum value; every
// span here is in-process work.
const spanKindInternal = 1

// OTLPOptions configures one export.
type OTLPOptions struct {
	// Service is the service.name resource attribute ("re2xolap" when
	// empty).
	Service string
	// TraceID fixes the 16-byte trace ID; the zero value uses the
	// trace's own ID (set by NewTrace / NewTraceWithRemoteParent), and
	// traces without one derive an ID from the root span's start time
	// and a process-wide sequence.
	TraceID [16]byte
	// NewSpanID overrides span-ID generation for every span (tests fix
	// it for golden files); nil exports each span's own creation-time
	// ID, numbering any ID-less spans depth-first from 1, which is
	// deterministic given the tree shape.
	NewSpanID func() [8]byte
}

// otlpSeq disambiguates trace IDs derived in the same nanosecond.
var otlpSeq atomic.Uint64

// EncodeOTLP writes t as one OTLP/JSON ExportTraceServiceRequest.
// Unended spans export with their running duration at encode time.
func EncodeOTLP(w io.Writer, t *Trace, opts OTLPOptions) error {
	if t == nil {
		return nil
	}
	service := opts.Service
	if service == "" {
		service = "re2xolap"
	}
	root := t.Root()
	traceID := opts.TraceID
	if traceID == ([16]byte{}) {
		traceID = t.traceID
	}
	if traceID == ([16]byte{}) {
		seq := otlpSeq.Add(1)
		nano := uint64(rootStart(t).UnixNano())
		for i := 0; i < 8; i++ {
			traceID[i] = byte(nano >> (56 - 8*i))
			traceID[8+i] = byte(seq >> (56 - 8*i))
		}
	}
	override := opts.NewSpanID != nil
	newID := opts.NewSpanID
	if newID == nil {
		var n uint64
		newID = func() [8]byte {
			n++
			var id [8]byte
			for i := 0; i < 8; i++ {
				id[i] = byte(n >> (56 - 8*i))
			}
			return id
		}
	}

	var spans []otlpSpan
	tid := hex.EncodeToString(traceID[:])
	// A remote parent (trace continued from another process) becomes
	// the exported root's parentSpanId, stitching the two processes'
	// spans into one tree. An explicit NewSpanID override regenerates
	// all IDs, so the remote link would dangle — skip it there.
	rootParent := ""
	if !override && t.parentSpan != ([8]byte{}) {
		rootParent = hex.EncodeToString(t.parentSpan[:])
	}
	// One lock for the whole walk: the tree is tiny (a handful of
	// spans per query) and a consistent snapshot beats span-by-span
	// locking.
	t.mu.Lock()
	var walk func(s *Span, parent string)
	walk = func(s *Span, parent string) {
		id := s.id
		if override || id == ([8]byte{}) {
			id = newID()
		}
		sid := hex.EncodeToString(id[:])
		end := s.start.Add(s.dur)
		if !s.ended {
			end = time.Now()
		}
		o := otlpSpan{
			TraceID:           tid,
			SpanID:            sid,
			ParentSpanID:      parent,
			Name:              s.name,
			Kind:              spanKindInternal,
			StartTimeUnixNano: nanoString(s.start),
			EndTimeUnixNano:   nanoString(end),
		}
		for _, a := range s.attrs {
			o.Attributes = append(o.Attributes, otlpKeyValue{Key: a.Key, Value: otlpAnyValue{StringValue: a.Value}})
		}
		for _, ev := range s.events {
			o.Events = append(o.Events, otlpEvent{
				TimeUnixNano: nanoString(s.start.Add(ev.at)),
				Name:         ev.name,
			})
		}
		spans = append(spans, o)
		for _, c := range s.children {
			walk(c, sid)
		}
	}
	walk(root, rootParent)
	t.mu.Unlock()

	req := otlpRequest{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKeyValue{
			{Key: "service.name", Value: otlpAnyValue{StringValue: service}},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "re2xolap/internal/obs"},
			Spans: spans,
		}},
	}}}
	enc := json.NewEncoder(w)
	return enc.Encode(req)
}

// rootStart reads the root span's start under the trace lock.
func rootStart(t *Trace) time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.start
}

// nanoString renders a timestamp as the OTLP/JSON string-encoded
// nanosecond count.
func nanoString(ts time.Time) string {
	return strconv.FormatInt(ts.UnixNano(), 10)
}

// OTLPSink serializes traces to a writer as JSON lines, one
// ExportTraceServiceRequest per trace — the shape an OTLP/HTTP
// forwarder or offline importer consumes. Safe for concurrent Export
// calls; nil-safe like the rest of the package.
type OTLPSink struct {
	mu      sync.Mutex
	w       io.Writer
	service string
}

// NewOTLPSink wraps w. The service name lands in every request's
// resource attributes.
func NewOTLPSink(w io.Writer, service string) *OTLPSink {
	return &OTLPSink{w: w, service: service}
}

// Export encodes one trace. Errors are returned, not sticky.
func (s *OTLPSink) Export(t *Trace) error {
	if s == nil || t == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := EncodeOTLP(s.w, t, OTLPOptions{Service: s.service}); err != nil {
		return fmt.Errorf("obs: otlp export: %w", err)
	}
	return nil
}

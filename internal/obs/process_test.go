package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegisterProcessMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("go_goroutines"); !ok || v < 1 {
		t.Errorf("go_goroutines = %v ok=%v, want >= 1", v, ok)
	}
	if v, ok := snap.Value("go_heap_alloc_bytes"); !ok || v <= 0 {
		t.Errorf("go_heap_alloc_bytes = %v ok=%v, want > 0", v, ok)
	}
	if v, ok := snap.Value("go_gc_pause_seconds_total"); !ok || v < 0 {
		t.Errorf("go_gc_pause_seconds_total = %v ok=%v, want >= 0", v, ok)
	}
	if v, ok := snap.Value("process_uptime_seconds"); !ok || v < 0 {
		t.Errorf("process_uptime_seconds = %v ok=%v, want >= 0", v, ok)
	}
	if !strings.Contains(buf.String(), "# TYPE go_goroutines gauge") {
		t.Errorf("missing TYPE line:\n%s", buf.String())
	}

	// Nil registry: registration is a no-op, not a panic.
	RegisterProcessMetrics(nil)
}

package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// newReplicatedFaults builds an n-shard coordinator where every shard
// has `replicas` FaultClient-wrapped copies of its partition (all
// replicas of a shard share the partition store — the identical-copy
// contract). fcfg, when non-nil, picks each replica's fault schedule.
func newReplicatedFaults(t *testing.T, ts []rdf.Triple, n, replicas int, cfg Config,
	fcfg func(shard, rep int) endpoint.FaultConfig) (*Coordinator, [][]*endpoint.FaultClient) {
	t.Helper()
	parts := Partitioner{N: n}.Split(ts)
	groups := make([][]endpoint.Client, n)
	faults := make([][]*endpoint.FaultClient, n)
	for i := 0; i < n; i++ {
		st := storeFromTriples(t, parts[i])
		for j := 0; j < replicas; j++ {
			fc := endpoint.FaultConfig{}
			if fcfg != nil {
				fc = fcfg(i, j)
			}
			f := endpoint.NewFault(endpoint.NewInProcess(st), fc)
			faults[i] = append(faults[i], f)
			groups[i] = append(groups[i], f)
		}
	}
	c, err := NewReplicated(groups, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, faults
}

// runCorpusComplete runs the full determinism corpus against c and
// asserts every answer is complete (no Incomplete flag, no skipped
// shards) and byte-identical to want[name].
func runCorpusComplete(t *testing.T, c *Coordinator, want map[string][]byte, label string) {
	t.Helper()
	ctx := context.Background()
	for _, cq := range determinismCorpus() {
		res, meta, err := c.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s: %s: %v", label, cq.name, err)
		}
		if meta.Incomplete || len(meta.SkippedShards) > 0 {
			t.Fatalf("%s: %s: answer degraded (skipped %v), want complete",
				label, cq.name, meta.SkippedShards)
		}
		if got := encode(t, res); !bytes.Equal(got, want[cq.name]) {
			t.Errorf("%s: %s: bytes diverge from healthy baseline:\n%s\nvs\n%s",
				label, cq.name, got, want[cq.name])
		}
	}
}

// corpusBaseline computes the healthy single-replica answers.
func corpusBaseline(t *testing.T, ts []rdf.Triple, n int) map[string][]byte {
	t.Helper()
	base := newTopology(t, ts, n, Config{})
	want := map[string][]byte{}
	for _, cq := range determinismCorpus() {
		res, meta, err := base.QueryX(context.Background(), endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("baseline %s: %v", cq.name, err)
		}
		if meta.Incomplete {
			t.Fatalf("baseline %s: incomplete", cq.name)
		}
		want[cq.name] = encode(t, res)
	}
	return want
}

// TestFailoverOneReplicaDown is the acceptance scenario: with one
// replica of each shard hard-down from the start, the full corpus
// returns complete answers byte-identical to the healthy baseline —
// failover, not degradation.
func TestFailoverOneReplicaDown(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	want := corpusBaseline(t, ts, n)
	c, _ := newReplicatedFaults(t, ts, n, 2, Config{NoResilience: true},
		func(shard, rep int) endpoint.FaultConfig {
			return endpoint.FaultConfig{Down: rep == 0} // preferred replica dead
		})
	runCorpusComplete(t, c, want, "replica0-down")
}

// TestFailoverKillMidRun kills one replica of every shard halfway
// through the corpus: queries before, at, and after the kill must all
// stay complete and byte-identical.
func TestFailoverKillMidRun(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	want := corpusBaseline(t, ts, n)
	c, faults := newReplicatedFaults(t, ts, n, 2, Config{NoResilience: true}, nil)
	ctx := context.Background()
	corpus := determinismCorpus()
	for i, cq := range corpus {
		if i == len(corpus)/2 {
			for s := 0; s < n; s++ {
				faults[s][0].SetDown(true)
			}
		}
		res, meta, err := c.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (query %d): %v", cq.name, i, err)
		}
		if meta.Incomplete || len(meta.SkippedShards) > 0 {
			t.Fatalf("%s: degraded after mid-run kill (skipped %v)", cq.name, meta.SkippedShards)
		}
		if got := encode(t, res); !bytes.Equal(got, want[cq.name]) {
			t.Errorf("%s: bytes diverge after mid-run kill", cq.name)
		}
	}
	// The killed replicas really were preferred before the kill.
	for s := 0; s < n; s++ {
		if faults[s][0].Calls() == 0 {
			t.Errorf("shard %d replica 0 never served before the kill", s)
		}
	}
}

// TestFailoverFlappyReplica runs the corpus with every shard's
// preferred replica flapping (down 1 call, up 2): each individual
// failure falls over to the stable replica, so every answer stays
// complete and byte-identical.
func TestFailoverFlappyReplica(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	want := corpusBaseline(t, ts, n)
	c, _ := newReplicatedFaults(t, ts, n, 2, Config{NoResilience: true},
		func(shard, rep int) endpoint.FaultConfig {
			if rep == 0 {
				return endpoint.FaultConfig{FlapDown: 1, FlapUp: 2}
			}
			return endpoint.FaultConfig{}
		})
	runCorpusComplete(t, c, want, "flappy")
}

// TestFailoverConcurrentKill hammers the coordinator from many
// goroutines while replicas are killed and revived concurrently —
// with the race detector this is the failover race check. Every
// answer must stay complete and byte-identical.
func TestFailoverConcurrentKill(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	c, faults := newReplicatedFaults(t, ts, n, 2, Config{NoResilience: true}, nil)
	queries := []string{
		`SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY DESC(?v) LIMIT 4`,
		`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
		`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`,
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		res, _, err := c.QueryX(context.Background(), endpoint.Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = encode(t, res)
	}

	stop := make(chan struct{})
	var killer sync.WaitGroup
	killer.Add(1)
	go func() {
		defer killer.Done()
		down := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			down = !down
			for s := 0; s < n; s++ {
				faults[s][0].SetDown(down)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				i := (g + k) % len(queries)
				res, meta, err := c.QueryX(context.Background(), endpoint.Request{Query: queries[i]})
				if err != nil {
					errCh <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				if meta.Incomplete {
					errCh <- fmt.Errorf("query %d: degraded under concurrent kill", i)
					return
				}
				var buf bytes.Buffer
				if err := endpoint.EncodeResults(&buf, res); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), want[i]) {
					errCh <- fmt.Errorf("query %d: bytes diverge under concurrent kill", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	killer.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// permClient fails permanently — the kind of error failover must NOT
// mask (a bad query fails identically on every replica).
type permClient struct{ calls *int }

func (c permClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	*c.calls++
	return nil, endpoint.MarkPermanent(errors.New("permanently broken"))
}

// TestNoFailoverOnPermanentError checks the failover gate: permanent
// errors surface immediately instead of hammering the other replicas.
func TestNoFailoverOnPermanentError(t *testing.T) {
	st := storeFromTriples(t, determinismTriples())
	secondCalls := 0
	c, err := NewReplicated([][]endpoint.Client{{
		permClient{calls: new(int)},
		countingClient{inner: endpoint.NewInProcess(st), calls: &secondCalls},
	}}, WithoutResilience())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.QueryX(context.Background(),
		endpoint.Request{Query: `SELECT ?s WHERE { ?s <http://t/value> ?v }`})
	if err == nil {
		t.Fatal("permanent error must fail the query")
	}
	if !errors.Is(err, endpoint.ErrPermanent) {
		t.Fatalf("error lost its permanent class: %v", err)
	}
	if secondCalls != 0 {
		t.Fatalf("permanent error failed over anyway (%d calls on replica 1)", secondCalls)
	}
}

// countingClient counts queries through to its inner client.
type countingClient struct {
	inner endpoint.Client
	calls *int
}

func (c countingClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	*c.calls++
	return c.inner.Query(ctx, query)
}

// TestSkippedShardIndices checks satellite detail: a degraded answer
// names exactly which shards it is missing, in the meta and in the
// per-shard call records.
func TestSkippedShardIndices(t *testing.T) {
	ts := determinismTriples()
	parts := Partitioner{N: 3}.Split(ts)
	mk := func(i int) endpoint.Client {
		return endpoint.NewInProcess(storeFromTriples(t, parts[i]))
	}
	c, err := New([]endpoint.Client{mk(0), downClient{}, mk(2)}, WithDegraded(true))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, q := range []string{
		`SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`, // colocated
		`SELECT (COUNT(?v) AS ?n) WHERE { ?s <http://t/value> ?v }`, // partial agg
		`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`, // gather
	} {
		_, meta, err := c.QueryX(context.Background(), endpoint.Request{Query: q})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !meta.Incomplete {
			t.Fatalf("%s: want incomplete", q)
		}
		if len(meta.SkippedShards) != 1 || meta.SkippedShards[0] != 1 {
			t.Fatalf("%s: SkippedShards = %v, want [1]", q, meta.SkippedShards)
		}
		if !meta.Shards[1].Skipped {
			t.Fatalf("%s: ShardCall[1].Skipped not set", q)
		}
		if meta.Shards[0].Skipped || meta.Shards[2].Skipped {
			t.Fatalf("%s: healthy shards marked skipped", q)
		}
	}
}

// TestHealthStateMachine unit-tests the up/down thresholds.
func TestHealthStateMachine(t *testing.T) {
	cfg := HealthConfig{FailThreshold: 2, RecoverThreshold: 3}.withDefaults()
	h := newHealthState()
	if !h.up.Load() || h.probed.Load() {
		t.Fatal("want optimistic-up, unprobed start")
	}
	if h.observe(false, cfg) {
		t.Fatal("one failure must not flip with threshold 2")
	}
	if !h.probed.Load() {
		t.Fatal("observe must mark probed")
	}
	if !h.observe(false, cfg) || h.up.Load() {
		t.Fatal("second consecutive failure must flip down")
	}
	if h.observe(false, cfg) {
		t.Fatal("already down: no flip")
	}
	// Recovery needs 3 consecutive OKs; a failure resets the streak.
	h.observe(true, cfg)
	h.observe(true, cfg)
	h.observe(false, cfg)
	h.observe(true, cfg)
	if h.observe(true, cfg) || h.up.Load() {
		t.Fatal("interrupted OK streak must not recover early")
	}
	if !h.observe(true, cfg) || !h.up.Load() {
		t.Fatal("third consecutive OK must flip up")
	}
}

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestProberDownAndRecover drives the full probe loop: a killed
// replica is marked down (and stops being preferred), readiness
// reflects an all-down shard, and a revived replica recovers.
func TestProberDownAndRecover(t *testing.T) {
	ts := determinismTriples()
	reg := obs.NewRegistry()
	c, faults := newReplicatedFaults(t, ts, 1, 2, Config{
		NoResilience: true,
		Registry:     reg,
		Health:       HealthConfig{Interval: 3 * time.Millisecond, Timeout: 100 * time.Millisecond},
	}, nil)

	// First sweep confirms both replicas: ready.
	eventually(t, 5*time.Second, func() bool { return c.Ready() == nil },
		"coordinator never became ready with healthy replicas")

	r0 := c.currentView().groups[0].replicas[0]
	faults[0][0].SetDown(true)
	eventually(t, 5*time.Second, func() bool { return !r0.health.up.Load() },
		"prober never marked the killed replica down")
	if c.Ready() != nil {
		t.Fatal("one healthy replica left: must stay ready")
	}

	// Routing now prefers replica 1 — no failover needed, replica 0
	// untouched by queries.
	before := faults[0][0].Calls()
	query := `SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`
	if _, meta, err := c.QueryX(context.Background(), endpoint.Request{Query: query}); err != nil {
		t.Fatal(err)
	} else if meta.Incomplete {
		t.Fatal("unexpected degraded answer")
	} else if meta.Shards[0].Replica != 1 {
		t.Fatalf("routed to replica %d, want the healthy 1", meta.Shards[0].Replica)
	} else if meta.Shards[0].Failovers != 0 {
		t.Fatal("health-aware routing should not count as failover")
	}
	if faults[0][0].Calls() != before {
		t.Fatal("down replica still receiving queries")
	}

	// Both down: not ready (but queries still try last-resort routing).
	faults[0][1].SetDown(true)
	eventually(t, 5*time.Second, func() bool { return c.Ready() != nil },
		"readiness never failed with every replica down")
	if err := c.Ready(); !strings.Contains(err.Error(), "shard 0") {
		t.Fatalf("readiness error should name the shard: %v", err)
	}

	// Revive both: recovery probes bring the shard back.
	faults[0][0].SetDown(false)
	faults[0][1].SetDown(false)
	r1 := c.currentView().groups[0].replicas[1]
	eventually(t, 5*time.Second, func() bool {
		return c.Ready() == nil && r0.health.up.Load() && r1.health.up.Load()
	}, "revived replicas never recovered")

	// The exposition carries the per-replica gauges and transitions.
	// The gauges are written by the prober goroutine just after the
	// state flip, so poll the scrape rather than racing it.
	scrape := func() string {
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	eventually(t, 5*time.Second, func() bool {
		text := scrape()
		return strings.Contains(text, `re2xolap_replica_up{replica="0",shard="0"} 1`) &&
			strings.Contains(text, `re2xolap_replica_up{replica="1",shard="0"} 1`)
	}, "replica up gauges never returned to 1 after revival")
	text := scrape()
	for _, want := range []string{
		`re2xolap_replica_probe_seconds_count{replica="0",shard="0"}`,
		`re2xolap_replica_transitions_total{to="down"}`,
		`re2xolap_replica_transitions_total{to="up"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestProberBlackholeReplica checks a partitioned (hanging) replica is
// detected by probe timeout rather than stalling the sweep.
func TestProberBlackholeReplica(t *testing.T) {
	ts := determinismTriples()
	c, faults := newReplicatedFaults(t, ts, 1, 2, Config{
		NoResilience: true,
		Health:       HealthConfig{Interval: 3 * time.Millisecond, Timeout: 10 * time.Millisecond},
	}, nil)
	eventually(t, 5*time.Second, func() bool { return c.Ready() == nil },
		"never ready")
	faults[0][0].SetBlackhole(true)
	r0 := c.currentView().groups[0].replicas[0]
	eventually(t, 5*time.Second, func() bool { return !r0.health.up.Load() },
		"blackholed replica never marked down")
	if c.Ready() != nil {
		t.Fatal("healthy second replica: must stay ready")
	}
}

// TestReadyWithoutProber: health probing disabled means optimistic
// readiness — the coordinator is ready as soon as it is built.
func TestReadyWithoutProber(t *testing.T) {
	ts := determinismTriples()
	c, _ := newReplicatedFaults(t, ts, 2, 1, Config{NoResilience: true}, nil)
	if err := c.Ready(); err != nil {
		t.Fatalf("prober disabled: want immediate readiness, got %v", err)
	}
}

// TestHedgedSlowPrimary checks the hedge path: a slow (but healthy)
// primary is raced by the next replica after the budget, the fast
// replica's answer wins, and the hedge counters record it.
func TestHedgedSlowPrimary(t *testing.T) {
	ts := determinismTriples()
	reg := obs.NewRegistry()
	c, _ := newReplicatedFaults(t, ts, 1, 2, Config{
		NoResilience: true,
		Registry:     reg,
		HedgeAfter:   15 * time.Millisecond,
	}, func(shard, rep int) endpoint.FaultConfig {
		if rep == 0 {
			return endpoint.FaultConfig{Latency: 2 * time.Second}
		}
		return endpoint.FaultConfig{}
	})
	start := time.Now()
	res, meta, err := c.QueryX(context.Background(),
		endpoint.Request{Query: `SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Incomplete {
		t.Fatal("hedged answer must be complete")
	}
	if res.Len() == 0 {
		t.Fatal("empty hedged answer")
	}
	if meta.Shards[0].Replica != 1 {
		t.Fatalf("winner replica = %d, want the fast 1", meta.Shards[0].Replica)
	}
	if wall >= 2*time.Second {
		t.Fatalf("hedge did not cut tail latency: wall %s", wall)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "re2xolap_shard_hedges_total 1") {
		t.Errorf("hedge launch not counted:\n%s", text)
	}
	if !strings.Contains(text, "re2xolap_shard_hedge_wins_total 1") {
		t.Errorf("hedge win not counted:\n%s", text)
	}
}

// BenchmarkScatterSingleReplica / BenchmarkScatterReplicated measure
// the failover machinery's overhead on a healthy topology — the
// acceptance bar is <5%. Both run the same colocated query over the
// same 3 partitions; the replicated variant adds a second healthy
// replica per shard (never used: the preferred replica always
// answers).
func benchScatter(b *testing.B, replicas int) {
	ts := determinismTriples()
	parts := Partitioner{N: 3}.Split(ts)
	groups := make([][]endpoint.Client, 3)
	for i := range groups {
		st := store.New()
		if err := st.AddAll(parts[i]); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < replicas; j++ {
			groups[i] = append(groups[i], endpoint.NewInProcess(st))
		}
	}
	c, err := NewReplicated(groups, WithoutResilience())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := endpoint.Request{Query: `SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.QueryX(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScatterSingleReplica(b *testing.B) { benchScatter(b, 1) }
func BenchmarkScatterReplicated(b *testing.B)   { benchScatter(b, 2) }

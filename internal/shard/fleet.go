package shard

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"re2xolap/internal/obs"
)

// FleetConfig tunes the coordinator's fleet metrics collector: a
// scraper that pulls every HTTP replica's /metrics (the same topology
// view the health prober walks), merges the expositions under the
// obs.MergeProm rules, and serves the fleet view via FleetHandler.
// Replicas whose spec is not an http(s) URL (in-process backends)
// cannot be scraped and are excluded from the fleet view; their
// metrics live in the process's own registry.
type FleetConfig struct {
	// Interval between background collection sweeps. <= 0 means
	// on-demand: each FleetHandler request runs one sweep first, which
	// is the right mode for manual inspection and CI; a Prometheus
	// scraping /metrics/fleet every 15s wants a background interval so
	// request latency is one map read, not a fan-out scrape.
	Interval time.Duration
	// Timeout bounds one replica scrape; 0 means 2s.
	Timeout time.Duration
	// Client overrides the scrape HTTP client (tests).
	Client *http.Client
	// Passthrough adds family names to the default passthrough set
	// (per-instance series with an `instance` label instead of merged).
	Passthrough []string
}

// fleetPassthrough is the default set of families kept per-instance:
// process-identity gauges where any cross-instance aggregate (sum or
// max) would misread — a replica's store size, uptime, or goroutine
// count is meaningful only per process.
var fleetPassthrough = []string{
	"re2xolap_store_triples",
	"re2xolap_par_active_workers",
	"process_uptime_seconds",
	"go_goroutines",
	"go_heap_alloc_bytes",
	"go_gc_pause_seconds_total",
}

// maxScrapeBody caps one scrape response (a runaway exposition must
// not balloon coordinator memory).
const maxScrapeBody = 32 << 20

// scrapeState is one target's collection history. The last good
// snapshot is kept across failures so a dead replica's counters stay
// in the fleet totals, marked stale rather than vanishing.
type scrapeState struct {
	snap     *obs.PromSnapshot
	lastGood time.Time
	lastErr  string
}

// fleetCollector drives the scraping. States are keyed "shard|spec"
// (the same identity buildView uses for replica reuse) so history
// survives topology reloads that keep a replica.
type fleetCollector struct {
	c     *Coordinator
	cfg   FleetConfig
	httpc *http.Client

	collectMu sync.Mutex // serializes sweeps (background tick vs on-demand)
	mu        sync.Mutex // guards states
	states    map[string]*scrapeState

	cancel context.CancelFunc
	done   chan struct{}
}

// FleetInstance describes one replica's place in the fleet view.
type FleetInstance struct {
	Shard, Replica int
	Spec           string
	Instance       string // instance label value, "shard<i>/replica<j>"
	Scrapable      bool   // spec is an http(s) URL
	Scraped        bool   // at least one successful scrape
	Stale          bool   // last attempt failed (or never attempted)
	Age            time.Duration
	Err            string
}

// ReplicaStatus is one replica's routing health, as the prober and
// failover see it (Status exposes what the dashboard renders).
type ReplicaStatus struct {
	Shard, Replica int
	Spec           string
	Up, Probed     bool
}

// Status reports the current view's per-replica health.
func (c *Coordinator) Status() []ReplicaStatus {
	v := c.currentView()
	var out []ReplicaStatus
	for i, g := range v.groups {
		for j, r := range g.replicas {
			out = append(out, ReplicaStatus{
				Shard: i, Replica: j, Spec: r.spec,
				Up:     r.health.up.Load(),
				Probed: r.health.probed.Load(),
			})
		}
	}
	return out
}

// startFleet launches the collector when configured (mirrors
// startProber).
func (c *Coordinator) startFleet() {
	if c.cfg.Fleet == nil {
		return
	}
	cfg := *c.cfg.Fleet
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	httpc := cfg.Client
	if httpc == nil {
		httpc = &http.Client{}
	}
	c.fleet = &fleetCollector{c: c, cfg: cfg, httpc: httpc, states: map[string]*scrapeState{}}
	if cfg.Interval > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		c.fleet.cancel = cancel
		c.fleet.done = make(chan struct{})
		go c.fleet.loop(ctx)
	}
}

func (f *fleetCollector) loop(ctx context.Context) {
	defer close(f.done)
	f.Collect(ctx)
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.Collect(ctx)
		}
	}
}

// metricsURL derives the scrape URL from a replica spec: http(s) specs
// have their path replaced by /metrics (the spec addresses /sparql);
// anything else is unscrapable.
func metricsURL(spec string) (string, bool) {
	u, err := url.Parse(spec)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", false
	}
	u.Path, u.RawQuery, u.Fragment = "/metrics", "", ""
	return u.String(), true
}

// Collect runs one sweep: scrape every scrapable replica of the
// current view concurrently, record outcomes, and prune targets the
// topology dropped.
func (f *fleetCollector) Collect(ctx context.Context) {
	f.collectMu.Lock()
	defer f.collectMu.Unlock()
	start := time.Now()
	type target struct {
		key, url string
	}
	v := f.c.currentView()
	var targets []target
	for i, g := range v.groups {
		for _, r := range g.replicas {
			if u, ok := metricsURL(r.spec); ok {
				targets = append(targets, target{key: fmt.Sprintf("%d|%s", i, r.spec), url: u})
			}
		}
	}
	snaps := make([]*obs.PromSnapshot, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for k := range targets {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			snaps[k], errs[k] = f.scrape(ctx, targets[k].url)
		}(k)
	}
	wg.Wait()
	if ctx.Err() != nil {
		// Shutdown mid-sweep: failures here are not evidence of replica
		// staleness.
		return
	}
	now := time.Now()
	f.mu.Lock()
	fresh := make(map[string]*scrapeState, len(targets))
	for k, tgt := range targets {
		st := f.states[tgt.key]
		if st == nil {
			st = &scrapeState{}
		}
		if errs[k] == nil {
			st.snap, st.lastGood, st.lastErr = snaps[k], now, ""
			f.c.m.fleetScrape(true)
		} else {
			st.lastErr = errs[k].Error()
			f.c.m.fleetScrape(false)
		}
		fresh[tgt.key] = st
	}
	f.states = fresh
	f.mu.Unlock()
	f.c.m.fleetCollect(time.Since(start))
}

func (f *fleetCollector) scrape(ctx context.Context, u string) (*obs.PromSnapshot, error) {
	sctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %d", u, resp.StatusCode)
	}
	return obs.ParseProm(io.LimitReader(resp.Body, maxScrapeBody))
}

// merged builds the fleet snapshot from the recorded states against
// the current view.
func (f *fleetCollector) merged() *obs.PromSnapshot {
	v := f.c.currentView()
	now := time.Now()
	f.mu.Lock()
	var insts []obs.PromInstance
	for i, g := range v.groups {
		for j, r := range g.replicas {
			if _, ok := metricsURL(r.spec); !ok {
				continue
			}
			st := f.states[fmt.Sprintf("%d|%s", i, r.spec)]
			in := obs.PromInstance{
				Instance:   fmt.Sprintf("shard%d/replica%d", i, j),
				Stale:      true,
				AgeSeconds: -1,
			}
			if st != nil {
				in.Snapshot = st.snap
				in.Stale = st.lastErr != "" || st.snap == nil
				if !st.lastGood.IsZero() {
					in.AgeSeconds = now.Sub(st.lastGood).Seconds()
				}
			}
			insts = append(insts, in)
		}
	}
	f.mu.Unlock()
	return obs.MergeProm(insts, obs.MergeOptions{
		Passthrough: append(append([]string{}, fleetPassthrough...), f.cfg.Passthrough...),
	})
}

// FleetSnapshot returns the merged fleet view, running a sweep first
// in on-demand mode (background mode serves the last sweep). Returns
// nil when fleet collection is not configured (WithFleet absent).
func (c *Coordinator) FleetSnapshot(ctx context.Context) *obs.PromSnapshot {
	f := c.fleet
	if f == nil {
		return nil
	}
	if f.cfg.Interval <= 0 {
		f.Collect(ctx)
	}
	return f.merged()
}

// FleetStatus reports per-replica scrape health for the dashboard.
// Non-scrapable (in-process) replicas are listed with Scrapable false.
func (c *Coordinator) FleetStatus() []FleetInstance {
	f := c.fleet
	if f == nil {
		return nil
	}
	v := c.currentView()
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []FleetInstance
	for i, g := range v.groups {
		for j, r := range g.replicas {
			fi := FleetInstance{
				Shard: i, Replica: j, Spec: r.spec,
				Instance: fmt.Sprintf("shard%d/replica%d", i, j),
				Stale:    true,
			}
			if _, ok := metricsURL(r.spec); ok {
				fi.Scrapable = true
				if st := f.states[fmt.Sprintf("%d|%s", i, r.spec)]; st != nil {
					fi.Scraped = st.snap != nil
					fi.Stale = st.lastErr != "" || st.snap == nil
					fi.Err = st.lastErr
					if !st.lastGood.IsZero() {
						fi.Age = now.Sub(st.lastGood)
					}
				}
			}
			out = append(out, fi)
		}
	}
	return out
}

// FleetHandler serves the merged fleet exposition at /metrics/fleet.
// Unreachable replicas degrade the output (their last good snapshot
// merged, staleness gauges flipped), never the response: a fleet with
// dead replicas is exactly when operators need this endpoint, so it
// does not 5xx on scrape failures. 404 when fleet collection is
// disabled.
func (c *Coordinator) FleetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := c.FleetSnapshot(req.Context())
		if snap == nil {
			http.Error(w, "fleet collection disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = snap.WriteProm(w)
	})
}

// stopFleet ends the background loop (no-op for on-demand mode).
func (c *Coordinator) stopFleet() {
	if c.fleet != nil && c.fleet.cancel != nil {
		c.fleet.cancel()
		<-c.fleet.done
		c.fleet.cancel = nil
	}
}

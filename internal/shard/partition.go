// Package shard federates N SPARQL backends — in-process stores or
// remote /sparql endpoints, mixed freely — behind one endpoint.Client.
// Triples are partitioned by subject hash, so every star-shaped query
// (all triple patterns sharing one subject) computes each solution
// wholly on one shard and the coordinator only has to union and
// canonically re-order the per-shard results. Aggregates decompose
// through sparql.PlanPartialAggregation, and everything else falls
// back to gathering the relevant triples and executing locally.
//
// The coordinator's output is a deterministic function of the dataset
// and the query, independent of the shard count: the determinism test
// suite asserts byte-identical JSON between 1-shard and N-shard
// topologies.
package shard

import (
	"hash/fnv"

	"re2xolap/internal/rdf"
)

// Partitioner assigns triples to shards by subject hash (FNV-1a over
// the term's kind and value). Subject hashing keeps all triples of one
// entity on one shard, which is what makes star-shaped queries
// shard-local; it is the standard partitioning scheme for distributed
// RDF stores.
type Partitioner struct {
	// N is the shard count; must be >= 1.
	N int
}

// Shard returns the shard index in [0, N) owning triples with the
// given subject.
func (p Partitioner) Shard(subject rdf.Term) int {
	if p.N <= 1 {
		return 0
	}
	h := fnv.New32a()
	// The kind byte keeps an IRI and a blank node with the same text
	// apart.
	h.Write([]byte{byte(subject.Kind)})
	h.Write([]byte(subject.Value))
	return int(h.Sum32() % uint32(p.N))
}

// Split partitions triples into N slices by subject. The slices are
// in input order, so a deterministic input yields deterministic
// shard contents.
func (p Partitioner) Split(ts []rdf.Triple) [][]rdf.Triple {
	n := p.N
	if n < 1 {
		n = 1
	}
	out := make([][]rdf.Triple, n)
	for _, t := range ts {
		i := p.Shard(t.S)
		out[i] = append(out[i], t)
	}
	return out
}

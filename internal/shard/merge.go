package shard

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
)

// unionResults concatenates per-shard result sets (nil slots are
// degraded-mode skips). Row order is irrelevant — the caller applies
// sparql.MergeFinalize — but CONSTRUCT graphs are deduplicated and
// canonically sorted here, since MergeFinalize leaves them alone.
func unionResults(q *sparql.Query, results []*sparql.Results) (*sparql.Results, error) {
	if q.Construct != nil {
		return unionGraphs(results)
	}
	merged := &sparql.Results{}
	rows := 0
	for _, r := range results {
		if r == nil {
			continue
		}
		if merged.Vars == nil {
			merged.Vars = r.Vars
		} else if !sameVars(merged.Vars, r.Vars) {
			// Shards parse identical query text, so diverging headers
			// mean a backend is not answering the query we sent.
			return nil, fmt.Errorf("shard: result header mismatch: %v vs %v", merged.Vars, r.Vars)
		}
		rows += len(r.Rows)
	}
	if merged.Vars == nil {
		return nil, errors.New("shard: no shard results")
	}
	merged.Rows = make([][]rdf.Term, 0, rows)
	for _, r := range results {
		if r != nil {
			merged.Rows = append(merged.Rows, r.Rows...)
		}
	}
	return merged, nil
}

// unionGraphs merges CONSTRUCT outputs: a graph is a set, so the
// shard graphs are united, deduplicated, and canonically ordered.
func unionGraphs(results []*sparql.Results) (*sparql.Results, error) {
	merged := &sparql.Results{IsConstruct: true}
	seen := map[string]struct{}{}
	any := false
	for _, r := range results {
		if r == nil {
			continue
		}
		any = true
		for _, t := range r.Triples {
			k := tripleKey(t)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			merged.Triples = append(merged.Triples, t)
		}
	}
	if !any {
		return nil, errors.New("shard: no shard results")
	}
	sort.Slice(merged.Triples, func(i, j int) bool {
		return tripleKey(merged.Triples[i]) < tripleKey(merged.Triples[j])
	})
	return merged, nil
}

// tripleKey is the canonical sort/dedup key of a triple.
func tripleKey(t rdf.Triple) string {
	var b strings.Builder
	b.WriteString(t.S.String())
	b.WriteByte('\x00')
	b.WriteString(t.P.String())
	b.WriteByte('\x00')
	b.WriteString(t.O.String())
	return b.String()
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package shard

import (
	"bytes"
	"context"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// TestProfilerDeterminism runs the full determinism corpus once bare
// and once under the runtime profiler and requires byte-identical
// results: collecting a per-operator profile must be pure
// observation, never perturbing row order, dedup, ties, or
// aggregation. Both the sequential and the parallel executor are
// checked, since the profiler treats fan-out specially (worker clones
// never profile).
func TestProfilerDeterminism(t *testing.T) {
	ts := determinismTriples()
	st := store.New()
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		engine := sparql.NewEngine(st)
		engine.Exec.Workers = workers
		for _, cq := range determinismCorpus() {
			bare, err := engine.QueryString(cq.query)
			if err != nil {
				t.Fatalf("%s (workers=%d) bare: %v", cq.name, workers, err)
			}
			profiled, p, err := engine.Profile(ctx, cq.query)
			if err != nil {
				t.Fatalf("%s (workers=%d) profiled: %v", cq.name, workers, err)
			}
			if !bytes.Equal(encode(t, bare), encode(t, profiled)) {
				t.Errorf("%s (workers=%d): profiled results diverge from bare:\n%s\nvs\n%s",
					cq.name, workers, encode(t, profiled), encode(t, bare))
			}
			if p == nil || p.Root == nil {
				t.Fatalf("%s (workers=%d): no profile tree", cq.name, workers)
			}
			if p.Root.RowsOut != profiled.Len() {
				t.Errorf("%s (workers=%d): profile root rows = %d, result rows = %d",
					cq.name, workers, p.Root.RowsOut, profiled.Len())
			}
		}
	}
}

// TestCoordinatorShardMeta checks the coordinator reports the plan
// class and per-shard accounting in QueryMeta.
func TestCoordinatorShardMeta(t *testing.T) {
	ts := determinismTriples()
	coord := newTopology(t, ts, 3, Config{})
	ctx := context.Background()
	for _, tc := range []struct {
		query string
		plan  string
	}{
		{`SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ASC(?v)`, "colocated"},
		{`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r`, "partial_agg"},
		{`SELECT ?a WHERE { ?a <http://t/knows> ?b . ?b <http://t/knows> ?c }`, "bound_join"},
		{`SELECT ?b WHERE { <http://t/p0> <http://t/knows>+ ?b }`, "gather"},
	} {
		res, meta, err := coord.QueryX(ctx, endpoint.Request{Query: tc.query})
		if err != nil {
			t.Fatalf("%s: %v", tc.plan, err)
		}
		if meta.Plan != tc.plan {
			t.Errorf("plan = %q, want %q (query %s)", meta.Plan, tc.plan, tc.query)
		}
		if len(meta.Shards) != 3 {
			t.Fatalf("%s: %d shard calls, want 3", tc.plan, len(meta.Shards))
		}
		total := 0
		for i, call := range meta.Shards {
			if call.Shard != i {
				t.Errorf("%s: call %d has shard index %d", tc.plan, i, call.Shard)
			}
			if call.Error != "" {
				t.Errorf("%s: shard %d error %q", tc.plan, i, call.Error)
			}
			total += call.Rows
		}
		if res.Len() > 0 && total == 0 {
			t.Errorf("%s: result has %d rows but shards report none", tc.plan, res.Len())
		}
	}
}

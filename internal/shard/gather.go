package shard

import (
	"context"
	"fmt"
	"sort"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/par"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// The gather plan is the exact fallback: fetch every triple any of
// the query's patterns could match from every shard, rebuild them in
// a local store, and run the original query there. It trades transfer
// volume for full generality — cross-shard joins, transitive
// closures, subselects, NOT EXISTS negation, and non-decomposable
// aggregates all evaluate with single-node semantics. Determinism
// holds because the gathered triple set is the union over shards
// (topology-independent) and is canonically sorted before loading, so
// the local store — and therefore the engine's output — is identical
// on every topology.

// fetchSpec is one triple-access pattern to pull from the shards.
type fetchSpec struct {
	query string // serialized fetch query (SELECT, or ASK when no vars)
	ask   bool
	// cols maps triple positions S,P,O to result columns; -1 means the
	// position is the constant in tp.
	cols [3]int
	tp   sparql.TriplePattern
}

// collectFetchSpecs walks the query and returns one deduplicated
// fetchSpec per distinct access pattern. Closure patterns fetch every
// edge of their predicate: intermediate hops are unrestricted, so the
// whole relation must be local before the closure runs.
func collectFetchSpecs(q *sparql.Query) []fetchSpec {
	var pats []sparql.TriplePattern
	addClosure := func(cp sparql.ClosurePattern) {
		pats = append(pats, sparql.TriplePattern{
			S: sparql.NewVarNode("s"),
			P: sparql.NewTermNode(cp.Pred),
			O: sparql.NewVarNode("o"),
		})
	}
	var fromExpr func(sparql.Expr)
	fromExpr = func(e sparql.Expr) {
		walkExists(e, func(x sparql.ExistsExpr) {
			pats = append(pats, x.Patterns...)
			for _, f := range x.Filters {
				fromExpr(f)
			}
		})
	}
	var fromQuery func(*sparql.Query)
	var fromElems func([]sparql.PatternElement)
	fromElems = func(es []sparql.PatternElement) {
		for _, e := range es {
			switch el := e.(type) {
			case sparql.TriplePattern:
				pats = append(pats, el)
			case sparql.ClosurePattern:
				addClosure(el)
			case sparql.OptionalElement:
				pats = append(pats, el.Patterns...)
				for _, f := range el.Filters {
					fromExpr(f)
				}
			case sparql.UnionElement:
				for _, br := range el.Branches {
					fromElems(br)
				}
			case sparql.FilterElement:
				fromExpr(el.Expr)
			case sparql.BindElement:
				fromExpr(el.Expr)
			case sparql.SubSelectElement:
				fromQuery(el.Query)
			}
		}
	}
	fromQuery = func(q *sparql.Query) {
		fromElems(q.Where)
		for _, h := range q.Having {
			fromExpr(h)
		}
		for _, it := range q.Select {
			if it.Expr != nil {
				fromExpr(it.Expr)
			}
		}
		for _, o := range q.OrderBy {
			fromExpr(o.Expr)
		}
	}
	fromQuery(q)

	seen := map[string]struct{}{}
	var specs []fetchSpec
	for _, tp := range pats {
		spec := buildFetchSpec(tp)
		if _, dup := seen[spec.query]; dup {
			continue
		}
		seen[spec.query] = struct{}{}
		specs = append(specs, spec)
	}
	return dropSubsumedSpecs(specs)
}

// dropSubsumedSpecs removes fetch specs whose triples another spec
// already loads in full. A full-relation fetch (?s <p> ?o, distinct
// variables — what a closure pattern over <p> adds) pulls every
// triple of that predicate, so a narrower fetch of the same predicate
// (constant subject or object, or repeated variable) would only
// re-transfer a subset; the unrestricted ?s ?p ?o fetch subsumes
// everything. Dropping subsumed specs cannot change the gathered
// store — their triples are a subset of what the covering spec loads
// — so determinism is untouched and duplicate transfer goes away.
func dropSubsumedSpecs(specs []fetchSpec) []fetchSpec {
	isFullRel := func(s fetchSpec) bool {
		return s.cols[1] < 0 && s.cols[0] >= 0 && s.cols[2] >= 0 && s.cols[0] != s.cols[2]
	}
	isAllVar := func(s fetchSpec) bool {
		return s.cols[0] >= 0 && s.cols[1] >= 0 && s.cols[2] >= 0
	}
	all := false
	full := map[string]bool{}
	for _, s := range specs {
		if isAllVar(s) {
			all = true
		} else if isFullRel(s) {
			full[s.tp.P.Term.String()] = true
		}
	}
	if !all && len(full) == 0 {
		return specs
	}
	kept := specs[:0]
	for _, s := range specs {
		switch {
		case isAllVar(s):
			kept = append(kept, s)
		case all:
			// Subsumed by the unrestricted fetch.
		case s.cols[1] < 0 && full[s.tp.P.Term.String()] && !isFullRel(s):
			// Subsumed by the full-relation fetch of the same predicate.
		default:
			kept = append(kept, s)
		}
	}
	return kept
}

// buildFetchSpec normalizes a pattern's variables positionally (a
// repeated variable keeps its join constraint; the original names are
// irrelevant to what the pattern fetches, so normalizing makes the
// dedup key structural) and builds the shard fetch query.
func buildFetchSpec(tp sparql.TriplePattern) fetchSpec {
	rename := map[string]string{}
	var sel []string
	norm := func(n sparql.Node) sparql.Node {
		if !n.IsVar {
			return n
		}
		g, ok := rename[n.Var]
		if !ok {
			g = fmt.Sprintf("g%d", len(rename))
			rename[n.Var] = g
			sel = append(sel, g)
		}
		return sparql.NewVarNode(g)
	}
	var spec fetchSpec
	spec.tp = sparql.TriplePattern{S: norm(tp.S), P: norm(tp.P), O: norm(tp.O)}
	colOf := func(n sparql.Node) int {
		if !n.IsVar {
			return -1
		}
		for i, g := range sel {
			if g == n.Var {
				return i
			}
		}
		return -1
	}
	spec.cols = [3]int{colOf(spec.tp.S), colOf(spec.tp.P), colOf(spec.tp.O)}

	fq := &sparql.Query{
		Where: []sparql.PatternElement{spec.tp},
		Limit: -1,
	}
	if len(sel) == 0 {
		// All positions concrete: existence check.
		fq.Ask = true
		spec.ask = true
	} else {
		// DISTINCT costs the shard a dedup pass but the projection can
		// collapse rows only when a variable repeats, and it caps the
		// transfer at the matching-triple count.
		fq.Distinct = true
		for _, g := range sel {
			fq.Select = append(fq.Select, sparql.SelectItem{Var: g})
		}
	}
	spec.query = fq.String()
	return spec
}

// triplesFromResult reconstructs the triples a shard reported for one
// fetch pattern.
func (f fetchSpec) triples(res *sparql.Results) []rdf.Triple {
	if f.ask {
		if res.Boolean {
			return []rdf.Triple{{S: f.tp.S.Term, P: f.tp.P.Term, O: f.tp.O.Term}}
		}
		return nil
	}
	out := make([]rdf.Triple, 0, len(res.Rows))
	for _, r := range res.Rows {
		var t rdf.Triple
		ok := true
		fill := func(col int, n sparql.Node) rdf.Term {
			if col < 0 {
				return n.Term
			}
			if col >= len(r) || !sparql.Bound(r[col]) {
				ok = false
				return rdf.Term{}
			}
			return r[col]
		}
		t.S = fill(f.cols[0], f.tp.S)
		t.P = fill(f.cols[1], f.tp.P)
		t.O = fill(f.cols[2], f.tp.O)
		if ok {
			out = append(out, t)
		}
	}
	return out
}

// runGather executes the gather plan: scatter the fetch queries,
// rebuild the union of the shard contributions in a local store, and
// run the original query there. Each shard's fetch queries route
// through its replica set, so every fetch individually fails over —
// a shard only counts as failed when a fetch exhausts its replicas.
func (c *Coordinator) runGather(ctx context.Context, v *view, q *sparql.Query, step string) (*sparql.Results, []obs.ShardCall, []int, error) {
	specs := collectFetchSpecs(q)
	scatterStart := time.Now()
	n := len(v.groups)
	shardTriples := make([][]rdf.Triple, n)
	calls := make([]obs.ShardCall, n)
	errs := make([]error, n)
	span := obs.SpanFrom(ctx)
	_ = par.Do(c.workersFor(n), n, func(i int) error {
		g := v.groups[i]
		sp := span.Start(fmt.Sprintf("shard-%d", i))
		defer sp.End()
		shardStart := time.Now()
		// One ShardCall summarizes all fetch queries against shard i:
		// rows are the triples it contributed, attempts/retries/failovers
		// sum over the fetches, replica is the last fetch's winner.
		call := &calls[i]
		call.Shard = i
		defer func() {
			call.WallMS = float64(time.Since(shardStart)) / float64(time.Millisecond)
			sp.SetAttr("rows", fmt.Sprint(call.Rows))
		}()
		for _, spec := range specs {
			c.m.scatterStart()
			callStart := time.Now()
			out := g.query(ctx, endpoint.Request{
				Query: spec.query,
				Opts:  endpoint.QueryOpts{Step: step, Span: sp},
			}, c.cfg.HedgeAfter)
			c.m.scatterEnd()
			g.shardCallMetrics(time.Since(callStart), out.err)
			call.Attempts += out.attempts
			call.Retries += out.retries
			call.Failovers += out.failovers
			call.Replica = out.replica
			if out.err != nil {
				sp.SetAttr("error", out.err.Error())
				call.Error = out.err.Error()
				errs[i] = out.err
				return nil
			}
			fetched := spec.triples(out.res)
			call.Rows += len(fetched)
			shardTriples[i] = append(shardTriples[i], fetched...)
		}
		return nil
	})
	c.m.phase("scatter", time.Since(scatterStart))

	var firstErr error
	var skipped []int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			skipped = append(skipped, i)
			calls[i].Skipped = true
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, errs[i])
			}
		}
	}
	if len(skipped) > 0 {
		if !c.cfg.Degraded || len(skipped) == n {
			return nil, calls, nil, firstErr
		}
		c.m.degraded(len(skipped))
		for i := range shardTriples {
			if errs[i] != nil {
				shardTriples[i] = nil
			}
		}
	}

	mergeStart := time.Now()
	local, err := buildGatherStore(shardTriples)
	c.m.phase("merge", time.Since(mergeStart))
	if err != nil {
		return nil, calls, nil, err
	}

	finStart := time.Now()
	eng := sparql.NewEngine(local)
	if c.cfg.Workers > 0 {
		eng.Exec.Workers = c.cfg.Workers
	}
	res, err := eng.QueryContext(ctx, q)
	c.m.phase("finalize", time.Since(finStart))
	if err != nil {
		return nil, calls, nil, err
	}
	return res, calls, skipped, nil
}

// buildGatherStore unions the shard contributions, deduplicates, and
// loads them canonically sorted — the load order (and so the store's
// term dictionary) is then a function of the triple set alone, which
// keeps the local engine's output topology-independent.
func buildGatherStore(shardTriples [][]rdf.Triple) (*store.Store, error) {
	seen := map[string]struct{}{}
	var all []rdf.Triple
	for _, ts := range shardTriples {
		for _, t := range ts {
			k := tripleKey(t)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			all = append(all, t)
		}
	}
	sort.Slice(all, func(i, j int) bool { return tripleKey(all[i]) < tripleKey(all[j]) })
	st := store.New()
	if err := st.AddAll(all); err != nil {
		return nil, err
	}
	return st, nil
}

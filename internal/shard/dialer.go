package shard

import (
	"fmt"
	"strconv"
	"strings"

	"re2xolap/internal/endpoint"
)

// HTTPDialer returns a Dialer that treats every replica spec as a
// SPARQL endpoint URL and dials it with endpoint.NewHTTPClient. The
// endpoint options (timeout, registry, slow-query log) apply to every
// replica client. It is the default dialer behind the root package's
// NewCoordinatorClient.
func HTTPDialer(opts ...endpoint.Option) Dialer {
	return func(shard, replica int, spec string) (endpoint.Client, error) {
		if !strings.HasPrefix(spec, "http://") && !strings.HasPrefix(spec, "https://") {
			return nil, fmt.Errorf("shard: shard %d replica %d: spec %q is not an http(s) URL", shard, replica, spec)
		}
		return endpoint.NewHTTPClient(spec, opts...), nil
	}
}

// A DialerProvider is a Topology that brings its own Dialer, so a
// single coordinator constructor can serve both URL topologies (dial
// over HTTP) and pre-built client topologies (hand the clients back).
// NewCoordinatorClient in the root package checks for it.
type DialerProvider interface {
	Dialer() Dialer
}

// ClientTopology is a static Topology over pre-built clients:
// groups[i] lists shard i's replica clients in preference order. Its
// replica specs are synthetic ("client:i/j") and its Dialer resolves
// them back to the supplied clients, which lets client-backed
// coordinators flow through the same NewDynamic path as URL-backed
// ones.
type ClientTopology struct {
	groups [][]endpoint.Client
}

// NewClientTopology wraps replica groups of pre-built clients as a
// Topology + DialerProvider.
func NewClientTopology(groups ...[]endpoint.Client) *ClientTopology {
	return &ClientTopology{groups: groups}
}

// Resolve implements Topology with synthetic "client:i/j" specs.
func (t *ClientTopology) Resolve() (TopologyView, error) {
	v := TopologyView{Groups: make([][]string, len(t.groups))}
	for i, g := range t.groups {
		v.Groups[i] = make([]string, len(g))
		for j := range g {
			v.Groups[i][j] = fmt.Sprintf("client:%d/%d", i, j)
		}
	}
	return v, v.Validate()
}

// Dialer implements DialerProvider: it maps each synthetic spec back
// to the client it names.
func (t *ClientTopology) Dialer() Dialer {
	return func(shard, replica int, spec string) (endpoint.Client, error) {
		i, j, ok := parseClientSpec(spec)
		if !ok || i >= len(t.groups) || j >= len(t.groups[i]) {
			return nil, fmt.Errorf("shard: spec %q names no client in this topology", spec)
		}
		c := t.groups[i][j]
		if c == nil {
			return nil, fmt.Errorf("shard: shard %d replica %d is nil", i, j)
		}
		return c, nil
	}
}

// parseClientSpec decodes "client:i/j".
func parseClientSpec(spec string) (i, j int, ok bool) {
	rest, found := strings.CutPrefix(spec, "client:")
	if !found {
		return 0, 0, false
	}
	a, b, found := strings.Cut(rest, "/")
	if !found {
		return 0, 0, false
	}
	i, err1 := strconv.Atoi(a)
	j, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || i < 0 || j < 0 {
		return 0, 0, false
	}
	return i, j, true
}

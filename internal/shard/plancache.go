package shard

import (
	"container/list"
	"sync"
)

// DefaultPlanCacheSize is the plan-cache capacity when none is
// configured.
const DefaultPlanCacheSize = 512

// planCache memoizes parse + classify + rewrite by query text. Every
// cached artifact — the parsed AST, the plan kind, the partial-agg
// and bound-join rewrites — is a pure function of the text and is
// read-only after construction, so entries are shared across
// concurrent queries without copying. Eviction is plain LRU: plans
// never go stale (there is nothing to invalidate them against), they
// only fall out of a full cache.
type planCache struct {
	mu  sync.Mutex
	cap int
	ent map[string]*list.Element
	lru list.List // front = most recent; values are *cacheEntry

	m *metrics
}

type cacheEntry struct {
	key  string
	plan queryPlan
}

// newPlanCache builds a cache with the given capacity (> 0).
func newPlanCache(capacity int, m *metrics) *planCache {
	return &planCache{
		cap: capacity,
		ent: make(map[string]*list.Element, capacity),
		m:   m,
	}
}

// get returns the cached plan for a query text, if present.
func (c *planCache) get(text string) (queryPlan, bool) {
	if c == nil {
		return queryPlan{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ent[text]
	if !ok {
		c.m.planCacheMiss()
		return queryPlan{}, false
	}
	c.lru.MoveToFront(el)
	c.m.planCacheHit()
	return el.Value.(*cacheEntry).plan, true
}

// put stores a plan, evicting the least recently used entry when the
// cache is full.
func (c *planCache) put(text string, p queryPlan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ent[text]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).plan = p
		return
	}
	if c.lru.Len() >= c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.ent, last.Value.(*cacheEntry).key)
		c.m.planCacheEvict()
	}
	c.ent[text] = c.lru.PushFront(&cacheEntry{key: text, plan: p})
	c.m.planCacheSize(c.lru.Len())
}

// len returns the current entry count.
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

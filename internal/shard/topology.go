package shard

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"re2xolap/internal/endpoint"
)

// A Topology names the replica endpoints behind a coordinator: one
// ordered group of replica specs per logical shard, where every
// replica of a group holds the same partition. The coordinator
// resolves the topology at construction and again on every Reload, so
// replicas can be added, removed, or replaced while queries are in
// flight — each query drains on the view it started with.
type Topology interface {
	// Resolve returns the current view. Groups[i] lists shard i's
	// replicas in preference order: the coordinator routes to the first
	// healthy one and fails over down the list.
	Resolve() (TopologyView, error)
}

// TopologyView is one resolved topology: Groups[i] holds the replica
// specs for shard i. A spec's meaning belongs to the Dialer that
// turns it into a client (a /sparql URL, the word "local", ...).
type TopologyView struct {
	Groups [][]string `json:"shards"`
}

// Validate checks structural sanity: at least one shard, no empty
// groups, no empty specs.
func (v TopologyView) Validate() error {
	if len(v.Groups) == 0 {
		return fmt.Errorf("shard: topology has no shards")
	}
	for i, g := range v.Groups {
		if len(g) == 0 {
			return fmt.Errorf("shard: topology shard %d has no replicas", i)
		}
		for j, spec := range g {
			if spec == "" {
				return fmt.Errorf("shard: topology shard %d replica %d is empty", i, j)
			}
		}
	}
	return nil
}

// Equal reports whether two views name the same replicas in the same
// order.
func (v TopologyView) Equal(o TopologyView) bool {
	if len(v.Groups) != len(o.Groups) {
		return false
	}
	for i := range v.Groups {
		if len(v.Groups[i]) != len(o.Groups[i]) {
			return false
		}
		for j := range v.Groups[i] {
			if v.Groups[i][j] != o.Groups[i][j] {
				return false
			}
		}
	}
	return true
}

// Static is the fixed Topology: Resolve always returns the same view.
// It is what the list-of-clients constructors use under the hood.
type Static struct{ View TopologyView }

// Resolve implements Topology.
func (s Static) Resolve() (TopologyView, error) {
	return s.View, s.View.Validate()
}

// FileTopology reads the view from a JSON file of the form
//
//	{"shards": [["http://a:8085/sparql", "http://b:8085/sparql"],
//	            ["http://c:8085/sparql"]]}
//
// so operators can edit one file and reload the coordinator (SIGHUP,
// or the mtime poller) instead of restarting it. Changed is the cheap
// mtime/size check the poll loop uses to skip re-parsing an untouched
// file, with a content-hash fallback for rewrites that land within the
// filesystem's mtime granularity at the same size. Safe for concurrent
// use.
type FileTopology struct {
	Path string

	mu    sync.Mutex
	mtime time.Time
	size  int64
	hash  [sha256.Size]byte
}

// NewFileTopology returns a file-backed topology source for path.
func NewFileTopology(path string) *FileTopology { return &FileTopology{Path: path} }

// Resolve implements Topology: it reads and parses the file, and
// records the file's stat so Changed can compare against it.
func (f *FileTopology) Resolve() (TopologyView, error) {
	raw, err := os.ReadFile(f.Path)
	if err != nil {
		return TopologyView{}, fmt.Errorf("shard: topology file: %w", err)
	}
	var v TopologyView
	if err := json.Unmarshal(raw, &v); err != nil {
		return TopologyView{}, fmt.Errorf("shard: topology file %s: %w", f.Path, err)
	}
	if err := v.Validate(); err != nil {
		return TopologyView{}, fmt.Errorf("%w (in %s)", err, f.Path)
	}
	if st, err := os.Stat(f.Path); err == nil {
		f.mu.Lock()
		f.mtime, f.size, f.hash = st.ModTime(), st.Size(), sha256.Sum256(raw)
		f.mu.Unlock()
	}
	return v, nil
}

// Changed reports whether the file differs from the last successful
// Resolve — the signal the poll loop acts on. The fast path compares
// mtime and size from one stat; when both match, the content hash
// breaks the tie, because a rewrite landing within the filesystem's
// mtime granularity at the same byte count (two same-length endpoint
// URLs swapped by a deploy script) is otherwise invisible and the
// coordinator would serve the stale topology until an unrelated edit.
// A stat or read error is returned so a vanished file is visible
// rather than silently "unchanged".
func (f *FileTopology) Changed() (bool, error) {
	st, err := os.Stat(f.Path)
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	mtime, size, hash := f.mtime, f.size, f.hash
	f.mu.Unlock()
	if !st.ModTime().Equal(mtime) || st.Size() != size {
		return true, nil
	}
	raw, err := os.ReadFile(f.Path)
	if err != nil {
		return false, err
	}
	return sha256.Sum256(raw) != hash, nil
}

// Dialer turns one replica spec into a client. shard and replica are
// the spec's position in the view, so a dialer can build partition
// stores for "local" specs. The coordinator wraps the returned client
// in its own per-replica ResilientClient (unless Config.NoResilience);
// dialers should return the bare transport.
type Dialer func(shard, replica int, spec string) (endpoint.Client, error)

package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

func TestPartitionerStableAndComplete(t *testing.T) {
	p := Partitioner{N: 4}
	subjects := []rdf.Term{
		rdf.NewIRI("http://t/a"), rdf.NewIRI("http://t/b"),
		rdf.NewBlank("b0"), rdf.NewIRI("http://t/c"),
	}
	for _, s := range subjects {
		i := p.Shard(s)
		if i < 0 || i >= 4 {
			t.Fatalf("shard %d out of range for %s", i, s)
		}
		for k := 0; k < 3; k++ {
			if p.Shard(s) != i {
				t.Fatalf("unstable hash for %s", s)
			}
		}
	}
	if (Partitioner{N: 1}).Shard(subjects[0]) != 0 {
		t.Fatal("single shard must be 0")
	}
	// An IRI and a blank node with the same text must be free to land
	// on different shards — the kind byte participates in the hash.
	iri, blank := rdf.NewIRI("x"), rdf.NewBlank("x")
	_ = iri
	_ = blank // no assertion on placement, just exercising both kinds
	ts := determinismTriples()
	parts := p.Split(ts)
	total := 0
	for _, part := range parts {
		total += len(part)
	}
	if total != len(ts) {
		t.Fatalf("split dropped triples: %d != %d", total, len(ts))
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		query string
		want  planKind
	}{
		{`SELECT ?s WHERE { ?s <http://t/p> ?o }`, planColocated},
		{`SELECT ?s ?v WHERE { ?s <http://t/p> ?o . ?s <http://t/q> ?v }`, planColocated},
		{`SELECT DISTINCT ?s WHERE { ?s <http://t/p> ?o } ORDER BY ?s LIMIT 3`, planColocated},
		{`ASK { ?s <http://t/p> ?o }`, planColocated},
		{`SELECT ?s WHERE { { ?s <http://t/p> ?o } UNION { ?s <http://t/q> ?o } }`, planColocated},
		{`SELECT ?s WHERE { ?s <http://t/p> ?o . FILTER NOT EXISTS { ?s <http://t/q> ?v } }`, planColocated},
		{`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/r> ?r . ?s <http://t/v> ?v } GROUP BY ?r`, planPartialAgg},
		{`SELECT (SUM(?v) AS ?t) WHERE { ?s <http://t/v> ?v }`, planPartialAgg},
		// Cross-subject join: two star groups connected on ?r.
		{`SELECT ?s WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c }`, planBoundJoin},
		// Closure.
		{`SELECT ?b WHERE { <http://t/a> <http://t/p>+ ?b }`, planGather},
		// Subselect.
		{`SELECT ?s WHERE { { SELECT ?s WHERE { ?s <http://t/p> ?o } } ?s <http://t/q> ?v }`, planGather},
		// EXISTS over a different subject.
		{`SELECT ?s WHERE { ?s <http://t/p> ?r . FILTER EXISTS { ?r <http://t/q> ?v } }`, planGather},
		// Non-decomposable aggregates.
		{`SELECT (COUNT(DISTINCT ?v) AS ?n) WHERE { ?s <http://t/v> ?v }`, planGather},
		{`SELECT ?r (GROUP_CONCAT(?v) AS ?all) WHERE { ?s <http://t/r> ?r . ?s <http://t/v> ?v } GROUP BY ?r`, planGather},
		// Pattern-free WHERE would duplicate rows per shard.
		{`SELECT ?x WHERE { VALUES ?x { <http://t/a> <http://t/b> } }`, planGather},
	}
	for _, c := range cases {
		q, err := sparql.Parse(c.query)
		if err != nil {
			t.Fatalf("parse %q: %v", c.query, err)
		}
		got := classify(q).kind
		if got != c.want {
			t.Errorf("classify(%s) = %s, want %s", c.query, got, c.want)
		}
	}
}

// downClient always fails with a permanent error (so the resilient
// wrapper does not retry-delay the test).
type downClient struct{}

func (downClient) Query(ctx context.Context, query string) (*sparql.Results, error) {
	return nil, endpoint.MarkPermanent(errors.New("shard down"))
}

func TestDegradedMode(t *testing.T) {
	ts := determinismTriples()
	parts := Partitioner{N: 3}.Split(ts)
	mk := func(i int) endpoint.Client {
		st := storeFromTriples(t, parts[i])
		return endpoint.NewInProcess(st)
	}
	query := `SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`

	// Strict mode: one dead shard fails the query.
	strict, err := New([]endpoint.Client{mk(0), downClient{}, mk(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := strict.QueryX(context.Background(), endpoint.Request{Query: query}); err == nil {
		t.Fatal("strict mode must fail when a shard is down")
	} else if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error should name the failed shard: %v", err)
	}

	// Degraded mode: partial answer, incomplete flag.
	reg := obs.NewRegistry()
	degraded, err := New([]endpoint.Client{mk(0), downClient{}, mk(2)}, WithDegraded(true), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	res, meta, err := degraded.QueryX(context.Background(), endpoint.Request{Query: query})
	if err != nil {
		t.Fatalf("degraded mode must answer: %v", err)
	}
	if !meta.Incomplete {
		t.Fatal("degraded answer must set Incomplete")
	}
	full := newTopology(t, ts, 3, Config{})
	fres, _, err := full.QueryX(context.Background(), endpoint.Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() >= fres.Len() {
		t.Fatalf("degraded answer should be a strict subset: %d vs %d rows", res.Len(), fres.Len())
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "re2xolap_shard_incomplete_total 1") {
		t.Fatalf("incomplete counter missing:\n%s", buf.String())
	}

	// Bound-join plan, degraded: same contract.
	bq := `SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`
	if _, meta, err := degraded.QueryX(context.Background(), endpoint.Request{Query: bq}); err != nil {
		t.Fatalf("degraded bound join must answer: %v", err)
	} else if meta.Plan != "bound_join" {
		t.Fatalf("expected bound_join plan, got %s", meta.Plan)
	} else if !meta.Incomplete {
		t.Fatal("degraded bound-join answer must set Incomplete")
	}

	// Gather plan, degraded: same contract.
	gq := `SELECT ?b WHERE { <http://t/r1> <http://t/partOf>+ ?b }`
	if _, meta, err := degraded.QueryX(context.Background(), endpoint.Request{Query: gq}); err != nil {
		t.Fatalf("degraded gather must answer: %v", err)
	} else if meta.Plan != "gather" {
		t.Fatalf("expected gather plan, got %s", meta.Plan)
	} else if !meta.Incomplete {
		t.Fatal("degraded gather answer must set Incomplete")
	}

	// All shards down: an error even in degraded mode.
	allDown, err := New([]endpoint.Client{downClient{}, downClient{}}, WithDegraded(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := allDown.QueryX(context.Background(), endpoint.Request{Query: query}); err == nil {
		t.Fatal("all-shards-down must fail even in degraded mode")
	}
}

// TestCoordinatorConcurrent hammers one coordinator from many
// goroutines across all three plans; `go test -race` makes this the
// scatter-gather race check.
func TestCoordinatorConcurrent(t *testing.T) {
	ts := determinismTriples()
	reg := obs.NewRegistry()
	c := newTopology(t, ts, 3, Config{Registry: reg})
	queries := []string{
		`SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY DESC(?v) LIMIT 4`,
		`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
		`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`,
		`ASK { ?s <http://t/region> <http://t/r1> }`,
	}
	want := make([][]byte, len(queries))
	for i, q := range queries {
		res, _, err := c.QueryX(context.Background(), endpoint.Request{Query: q})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = encode(t, res)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				i := (g + k) % len(queries)
				res, _, err := c.QueryX(context.Background(), endpoint.Request{Query: queries[i]})
				if err != nil {
					errCh <- err
					return
				}
				var buf bytes.Buffer
				if res.IsConstruct {
					continue
				}
				if err := endpoint.EncodeResults(&buf, res); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), want[i]) {
					errCh <- fmt.Errorf("concurrent result diverges for %q", queries[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestCoordinatorMetrics checks the per-shard and plan series land in
// the registry exposition.
func TestCoordinatorMetrics(t *testing.T) {
	ts := determinismTriples()
	reg := obs.NewRegistry()
	c := newTopology(t, ts, 3, Config{Registry: reg})
	ctx := context.Background()
	queries := []string{
		`SELECT ?s WHERE { ?s <http://t/region> ?r } LIMIT 2`,
		`SELECT (COUNT(?v) AS ?n) WHERE { ?s <http://t/value> ?v }`,
		`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c }`,
		`SELECT ?b WHERE { <http://t/r1> <http://t/partOf>+ ?b }`,
	}
	for _, q := range queries {
		if _, _, err := c.QueryX(ctx, endpoint.Request{Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	// Re-running the first query hits the plan cache.
	if _, _, err := c.QueryX(ctx, endpoint.Request{Query: queries[0]}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`re2xolap_shard_queries_total{shard="0"}`,
		`re2xolap_shard_queries_total{shard="2"}`,
		`re2xolap_shard_query_seconds_count{shard="1"}`,
		`re2xolap_shard_plans_total{plan="colocated"} 2`,
		`re2xolap_shard_plans_total{plan="partial_agg"} 1`,
		`re2xolap_shard_plans_total{plan="bound_join"} 1`,
		`re2xolap_shard_plans_total{plan="gather"} 1`,
		`re2xolap_shard_plan_cache_misses_total 4`,
		`re2xolap_shard_plan_cache_hits_total 1`,
		`re2xolap_shard_plan_cache_size 4`,
		`re2xolap_shard_bound_bindings_total`,
		`re2xolap_shard_fanout 3`,
		`re2xolap_shard_merge_seconds_count{phase="scatter"}`,
		`re2xolap_shard_merge_seconds_count{phase="join"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func storeFromTriples(t *testing.T, ts []rdf.Triple) *store.Store {
	t.Helper()
	st := store.New()
	if err := st.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	return st
}

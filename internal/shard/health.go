package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"re2xolap/internal/endpoint"
)

// HealthConfig tunes the coordinator's background replica prober. The
// prober runs one sweep immediately at construction and then every
// Interval: each replica gets a cheap health check (endpoint.Ping —
// GET /healthz for HTTP replicas, an ASK probe otherwise) under
// Timeout, feeding a per-replica up/down state machine. A replica
// turns down after FailThreshold consecutive failed probes and back
// up after RecoverThreshold consecutive successes — probing never
// stops while a replica is down, so recovery is automatic.
type HealthConfig struct {
	// Interval between probe sweeps; <= 0 disables the prober entirely
	// (replicas then stay routable and failover alone handles faults).
	Interval time.Duration
	// Timeout bounds one probe; 0 means 1s.
	Timeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a
	// replica down; 0 means 2.
	FailThreshold int
	// RecoverThreshold is how many consecutive probe successes mark a
	// down replica up again; 0 means 2.
	RecoverThreshold int
}

// withDefaults fills the zero fields.
func (h HealthConfig) withDefaults() HealthConfig {
	if h.Timeout <= 0 {
		h.Timeout = time.Second
	}
	if h.FailThreshold <= 0 {
		h.FailThreshold = 2
	}
	if h.RecoverThreshold <= 0 {
		h.RecoverThreshold = 2
	}
	return h
}

// healthState is one replica's probe-driven state. Routing reads `up`
// lock-free; the streak counters are mutated only by the prober
// goroutine. Replicas start optimistically up (so a coordinator
// without a prober routes normally) but unprobed (so readiness can
// insist on at least one confirmed-healthy replica per shard).
//
// The state survives topology reloads: a replica that keeps its spec
// keeps its client, its breaker, and its health history.
type healthState struct {
	up     atomic.Bool
	probed atomic.Bool
	// prober-goroutine-private:
	consecFails int
	consecOKs   int
}

func newHealthState() *healthState {
	h := &healthState{}
	h.up.Store(true)
	return h
}

// observe feeds one probe outcome through the state machine and
// reports whether the up/down state flipped.
func (h *healthState) observe(ok bool, cfg HealthConfig) (flipped bool) {
	defer h.probed.Store(true)
	if ok {
		h.consecOKs++
		h.consecFails = 0
		if !h.up.Load() && h.consecOKs >= cfg.RecoverThreshold {
			h.up.Store(true)
			return true
		}
		return false
	}
	h.consecFails++
	h.consecOKs = 0
	if h.up.Load() && h.consecFails >= cfg.FailThreshold {
		h.up.Store(false)
		return true
	}
	return false
}

// probeLoop is the coordinator's background prober: an immediate
// first sweep (so readiness converges right after construction), then
// one sweep per tick until ctx ends. Each sweep probes the replicas
// of the *current* view, so reloaded topologies are picked up on the
// next tick without restarting the loop.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	cfg := c.cfg.Health.withDefaults()
	c.sweep(ctx, cfg)
	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.sweep(ctx, cfg)
		}
	}
}

// sweep probes every replica of the current view concurrently and
// applies the outcomes. Probe concurrency is one goroutine per
// replica: probes are cheap and a hung replica (blackhole) must not
// delay the others past its own Timeout.
func (c *Coordinator) sweep(ctx context.Context, cfg HealthConfig) {
	v := c.view.Load()
	if v == nil {
		return
	}
	done := make(chan struct{})
	var pending atomic.Int64
	for _, g := range v.groups {
		for _, r := range g.replicas {
			pending.Add(1)
			go func(r *replica) {
				defer func() {
					if pending.Add(-1) == 0 {
						close(done)
					}
				}()
				c.probeOne(ctx, cfg, r)
			}(r)
		}
	}
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// probeOne health-checks one replica and feeds its state machine,
// gauges, and probe-latency histogram.
func (c *Coordinator) probeOne(ctx context.Context, cfg HealthConfig, r *replica) {
	pctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	start := time.Now()
	err := endpoint.Ping(pctx, r.raw)
	cancel()
	if ctx.Err() != nil {
		// The coordinator is shutting down; a probe cut short by that is
		// not evidence about the replica.
		return
	}
	r.mProbe.ObserveDuration(time.Since(start))
	if r.health.observe(err == nil, cfg) {
		c.m.transition(err == nil)
	}
	if r.health.up.Load() {
		r.mUp.Set(1)
	} else {
		r.mUp.Set(0)
	}
}

// Ready reports coordinator readiness: every shard needs at least one
// replica that is up — and, when the prober runs, confirmed by at
// least one completed probe. Before the first sweep finishes the
// coordinator reports not-ready, which is exactly what a load
// balancer should see for a cold process. Wire it into the serving
// layer via endpoint.WithReadiness(c.Ready).
func (c *Coordinator) Ready() error {
	v := c.view.Load()
	probing := c.cfg.Health.Interval > 0
	for i, g := range v.groups {
		ok := false
		for _, r := range g.replicas {
			if r.health.up.Load() && (!probing || r.health.probed.Load()) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("shard %d: no healthy replica (of %d)", i, len(g.replicas))
		}
	}
	return nil
}

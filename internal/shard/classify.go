package shard

import (
	"re2xolap/internal/sparql"
)

// planKind is the scatter-gather strategy chosen for a query.
type planKind int

const (
	// planColocated scatters the query (modifiers stripped) to every
	// shard and unions the rows: subject-hash partitioning guarantees
	// each solution is computed wholly on one shard.
	planColocated planKind = iota
	// planPartialAgg pushes partial aggregation down to the shards and
	// finalizes groups at the coordinator (sparql.PlanPartialAggregation).
	planPartialAgg
	// planBoundJoin decomposes a cross-shard BGP into per-shard subject
	// star groups and joins them at the coordinator bound-side-first:
	// the most selective group is fetched unconstrained, and each later
	// group's fetch ships the distinct bindings accumulated so far as a
	// VALUES constraint (sparql.PlanBoundJoin). FILTERs a group covers
	// push down with it; only the join columns cross the network instead
	// of whole relations.
	planBoundJoin
	// planGather fetches the triples matching the query's patterns from
	// every shard into a local store and executes there: the exact
	// fallback for closures, subselects, NOT EXISTS negation,
	// disconnected (cartesian) joins, and non-decomposable aggregates.
	planGather
)

// String names the plan for metrics labels.
func (k planKind) String() string {
	switch k {
	case planColocated:
		return "colocated"
	case planPartialAgg:
		return "partial_agg"
	case planBoundJoin:
		return "bound_join"
	default:
		return "gather"
	}
}

// planKinds is the metrics label vocabulary.
var planKinds = [...]planKind{planColocated, planPartialAgg, planBoundJoin, planGather}

// queryPlan is one classified query: the plan kind plus whichever
// rewrite the kind carries. It is a pure function of the query text —
// never of the topology or the data — which is both the determinism
// prerequisite (topology-independent answers) and what makes the
// coordinator's plan cache sound.
type queryPlan struct {
	query *sparql.Query
	kind  planKind
	agg   *sparql.PartialAggPlan
	bound *sparql.BoundJoinPlan
}

// classify plans a parsed query.
func classify(q *sparql.Query) queryPlan {
	if colocated(q) {
		if q.IsAggregate() {
			if p, ok := sparql.PlanPartialAggregation(q); ok {
				return queryPlan{query: q, kind: planPartialAgg, agg: p}
			}
			// A colocated but non-decomposable aggregate (DISTINCT inside,
			// GROUP_CONCAT, representative-row projection) still cannot be
			// row-unioned: per-shard aggregation has already collapsed the
			// groups. Gather is the exact path.
			return queryPlan{query: q, kind: planGather}
		}
		return queryPlan{query: q, kind: planColocated}
	}
	if p, ok := sparql.PlanBoundJoin(q); ok {
		return queryPlan{query: q, kind: planBoundJoin, bound: p}
	}
	return queryPlan{query: q, kind: planGather}
}

// colocated reports whether every solution of q is computed wholly on
// one shard under subject-hash partitioning: all triple patterns —
// including those inside OPTIONAL, UNION branches, and FILTER
// [NOT] EXISTS — share one identical subject node, there are no
// closures or subselects (their intermediate hops cross shards), and
// the top level generates rows from at least one triple pattern (a
// pattern-free WHERE would duplicate its rows once per shard).
func colocated(q *sparql.Query) bool {
	var subject *sparql.Node
	same := func(n sparql.Node) bool {
		if subject == nil {
			subject = &n
			return true
		}
		return sameNode(*subject, n)
	}
	var elems func([]sparql.PatternElement) bool
	var exprOK func(sparql.Expr) bool
	exprOK = func(e sparql.Expr) bool {
		ok := true
		walkExists(e, func(x sparql.ExistsExpr) {
			for _, tp := range x.Patterns {
				if !same(tp.S) {
					ok = false
				}
			}
			for _, f := range x.Filters {
				if !exprOK(f) {
					ok = false
				}
			}
		})
		return ok
	}
	elems = func(es []sparql.PatternElement) bool {
		for _, e := range es {
			switch el := e.(type) {
			case sparql.TriplePattern:
				if !same(el.S) {
					return false
				}
			case sparql.ClosurePattern, sparql.SubSelectElement:
				return false
			case sparql.OptionalElement:
				for _, tp := range el.Patterns {
					if !same(tp.S) {
						return false
					}
				}
				for _, f := range el.Filters {
					if !exprOK(f) {
						return false
					}
				}
			case sparql.UnionElement:
				for _, br := range el.Branches {
					if !elems(br) {
						return false
					}
				}
			case sparql.FilterElement:
				if !exprOK(el.Expr) {
					return false
				}
			case sparql.BindElement:
				if !exprOK(el.Expr) {
					return false
				}
			case sparql.ValuesElement:
				// Inline data replicates identically on every shard; it
				// only joins against shard-local solutions.
			}
		}
		return true
	}
	if !elems(q.Where) {
		return false
	}
	for _, h := range q.Having {
		if !exprOK(h) {
			return false
		}
	}
	for _, it := range q.Select {
		if it.Expr != nil && !exprOK(it.Expr) {
			return false
		}
	}
	for _, o := range q.OrderBy {
		if !exprOK(o.Expr) {
			return false
		}
	}
	return generatesRows(q.Where)
}

// walkExists visits every [NOT] EXISTS block nested in e. EXISTS is
// the one expression form that reaches back into graph patterns, so it
// is the only one the colocation check has to see.
func walkExists(e sparql.Expr, fn func(sparql.ExistsExpr)) {
	switch x := e.(type) {
	case sparql.ExistsExpr:
		fn(x)
	case sparql.BinaryExpr:
		walkExists(x.L, fn)
		walkExists(x.R, fn)
	case sparql.UnaryExpr:
		walkExists(x.E, fn)
	case sparql.InExpr:
		walkExists(x.E, fn)
		for _, y := range x.List {
			walkExists(y, fn)
		}
	case sparql.FuncExpr:
		for _, y := range x.Args {
			walkExists(y, fn)
		}
	case sparql.AggExpr:
		if x.Arg != nil {
			walkExists(x.Arg, fn)
		}
	}
}

// sameNode reports structural equality of two pattern nodes.
func sameNode(a, b sparql.Node) bool {
	if a.IsVar != b.IsVar {
		return false
	}
	if a.IsVar {
		return a.Var == b.Var
	}
	return a.Term == b.Term
}

// generatesRows reports whether the top-level group derives its rows
// from shard data: it contains a triple pattern, or consists of UNION
// elements whose every branch does. A WHERE made only of VALUES /
// BIND / FILTER produces the same rows on every shard, so a scatter
// would multiply them by the shard count.
func generatesRows(es []sparql.PatternElement) bool {
	sawUnion := false
	for _, e := range es {
		switch el := e.(type) {
		case sparql.TriplePattern:
			return true
		case sparql.UnionElement:
			all := true
			for _, br := range el.Branches {
				if !generatesRows(br) {
					all = false
					break
				}
			}
			if !all {
				return false
			}
			sawUnion = true
		}
	}
	return sawUnion
}

package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/par"
	"re2xolap/internal/sparql"
)

// DefaultBoundJoinChunk caps the VALUES rows shipped per bound-join
// fetch query when no chunk size is configured. Chunking bounds the
// serialized query size; the chunks partition the binding set, so
// each group solution still arrives exactly once.
const DefaultBoundJoinChunk = 1024

// boundChunk resolves the configured VALUES chunk size.
func (c *Coordinator) boundChunk() int {
	if c.cfg.BoundJoinChunk > 0 {
		return c.cfg.BoundJoinChunk
	}
	return DefaultBoundJoinChunk
}

// runBoundJoin executes the bound-join plan: one scatter round per
// star group, streaming each shard's response straight into the
// coordinator's hash join as it arrives — no local store is ever
// materialized. Rounds after the first constrain the fetch with the
// distinct accumulated bindings (chunked VALUES), so only join
// columns cross the network. Each fetch routes through the shard's
// replica set with failover and optional hedging; a shard counts as
// failed only once a fetch exhausts its replicas, and in degraded
// mode it is then excluded from the remaining rounds and reported in
// SkippedShards (the answer stays a subset of the true result).
func (c *Coordinator) runBoundJoin(ctx context.Context, v *view, plan *sparql.BoundJoinPlan, step string) (*sparql.Results, []obs.ShardCall, []int, error) {
	exec := plan.NewExec()
	n := len(v.groups)
	calls := make([]obs.ShardCall, n)
	for i := range calls {
		calls[i].Shard = i
	}
	errs := make([]error, n)
	span := obs.SpanFrom(ctx)
	var joinNS atomic.Int64

	aborted := false
steps:
	for s := 0; s < exec.Steps(); s++ {
		texts := exec.StepQueries(c.boundChunk())
		if len(texts) == 0 {
			// The accumulated relation is empty: every remaining round
			// would ship zero bindings and join to nothing.
			exec.EndStep()
			continue
		}
		scatterStart := time.Now()
		for _, text := range texts {
			_ = par.Do(c.workersFor(n), n, func(i int) error {
				if errs[i] != nil {
					return nil // shard already failed this query
				}
				g := v.groups[i]
				sp := span.Start(fmt.Sprintf("shard-%d", i))
				c.m.scatterStart()
				callStart := time.Now()
				out := g.query(ctx, endpoint.Request{
					Query: text,
					Opts:  endpoint.QueryOpts{Step: step, Span: sp},
				}, c.cfg.HedgeAfter)
				wall := time.Since(callStart)
				c.m.scatterEnd()
				g.shardCallMetrics(wall, out.err)
				call := &calls[i]
				call.Attempts += out.attempts
				call.Retries += out.retries
				call.Failovers += out.failovers
				call.Replica = out.replica
				call.WallMS += float64(wall) / float64(time.Millisecond)
				sp.SetAttr("replica", fmt.Sprint(out.replica))
				if out.err != nil {
					sp.SetAttr("error", out.err.Error())
					sp.End()
					call.Error = out.err.Error()
					errs[i] = out.err
					return nil
				}
				call.Rows += out.res.Len()
				sp.SetAttr("rows", fmt.Sprint(out.res.Len()))
				sp.End()
				probeStart := time.Now()
				err := exec.Feed(out.res)
				joinNS.Add(int64(time.Since(probeStart)))
				if err != nil {
					errs[i] = err
				}
				return nil
			})
			if boundAbort(c.cfg.Degraded, errs) {
				aborted = true
				c.m.phase("scatter", time.Since(scatterStart))
				break steps
			}
		}
		c.m.phase("scatter", time.Since(scatterStart))
		exec.EndStep()
	}
	c.m.phase("join", time.Duration(joinNS.Load()))
	c.m.boundShipped(exec.BindingsShipped())

	var firstErr error
	var skipped []int
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			skipped = append(skipped, i)
			calls[i].Skipped = true
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, errs[i])
			}
		}
	}
	if aborted || (len(skipped) > 0 && (!c.cfg.Degraded || len(skipped) == n)) {
		return nil, calls, nil, firstErr
	}
	if len(skipped) > 0 {
		c.m.degraded(len(skipped))
	}

	finStart := time.Now()
	res, err := exec.Finalize()
	c.m.phase("finalize", time.Since(finStart))
	if err != nil {
		return nil, calls, nil, err
	}
	return res, calls, skipped, nil
}

// boundAbort decides whether a bound-join round can continue: strict
// mode stops on the first shard failure, degraded mode only when
// every shard has failed.
func boundAbort(degraded bool, errs []error) bool {
	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
		}
	}
	if failed == 0 {
		return false
	}
	if !degraded {
		return true
	}
	return failed == len(errs)
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/sparql"
)

// replica is one backend of a replica set: the resilient-wrapped
// query client, the raw client the prober checks, and the health
// state routing reads. Replicas that keep their spec across topology
// reloads are reused wholesale, preserving breaker and health state.
type replica struct {
	shard, index int
	spec         string
	client       endpoint.Client // query path (resilient-wrapped)
	raw          endpoint.Client // probe path (as dialed)
	health       *healthState

	// lastGen is the store generation this replica last reported on a
	// successful answer (from QueryMeta.Generation / the
	// X-Re2xolap-Generation header). Remote replicas cannot be asked
	// for a live generation cheaply, so the coordinator folds this
	// last-seen value into its composed cache-invalidation token.
	lastGen atomic.Uint64

	mUp    *obs.Gauge
	mProbe *obs.Histogram
}

// generation resolves this replica's data-version contribution: a live
// read when the backend chain exposes one (in-process stores), the
// last query-reported value otherwise.
func (r *replica) generation() uint64 {
	if g, ok := endpoint.GenerationOf(r.raw); ok {
		return g
	}
	return r.lastGen.Load()
}

// replicaSet is one logical shard's ordered replicas plus its
// per-shard metric handles. All replicas hold the same partition, so
// any of them answers any shard query identically — which is what
// lets failover and hedging preserve the coordinator's byte-identical
// merge contract.
type replicaSet struct {
	shard    int
	replicas []*replica

	mQueries   *obs.Counter
	mErrors    *obs.Counter
	mLatency   *obs.Histogram
	mFailovers *obs.Counter
	// hedges/hedgeWins alias the coordinator-wide counters (shared by
	// every set; wired at view build).
	hedges    *obs.Counter
	hedgeWins *obs.Counter
}

// candidates returns the failover order: healthy replicas first, in
// index order, then unhealthy ones, also in index order. Down
// replicas stay in the list as a last resort — the prober's view may
// be stale, and trying a "down" replica beats failing a query when
// every replica is marked down.
func (g *replicaSet) candidates() []*replica {
	if len(g.replicas) == 1 {
		return g.replicas
	}
	// Fast path: everything healthy (the steady state) — index order IS
	// the preference order, no per-call allocation.
	allUp := true
	for _, r := range g.replicas {
		if !r.health.up.Load() {
			allUp = false
			break
		}
	}
	if allUp {
		return g.replicas
	}
	out := make([]*replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.health.up.Load() {
			out = append(out, r)
		}
	}
	for _, r := range g.replicas {
		if !r.health.up.Load() {
			out = append(out, r)
		}
	}
	return out
}

// failoverable reports whether an error justifies trying the next
// replica: transient delivery failures, open breakers, and timeouts
// do; permanent errors (a bad query fails identically everywhere) do
// not.
func failoverable(err error) bool {
	return errors.Is(err, endpoint.ErrRetryable) ||
		errors.Is(err, endpoint.ErrCircuitOpen) ||
		errors.Is(err, endpoint.ErrTimeout)
}

// groupResult is one replica set's answer to one query: the results,
// the winning replica's metadata, and the failover accounting that
// feeds obs.ShardCall.
type groupResult struct {
	res       *sparql.Results
	replica   int
	attempts  int
	retries   int
	failovers int
	err       error
}

// query runs one request against the set: first healthy replica,
// failover down the candidate list on retryable/circuit-open/timeout
// errors, and — when hedge > 0 — a hedged second request to the next
// candidate once the primary has been silent for the hedge budget.
func (g *replicaSet) query(ctx context.Context, req endpoint.Request, hedge time.Duration) groupResult {
	cands := g.candidates()
	var out groupResult
	hedged := false // the hedge pair consumed cands[k+1] already
	for k := 0; k < len(cands); k++ {
		if hedged {
			hedged = false
			continue
		}
		if k > 0 {
			out.failovers++
			g.mFailovers.Inc()
		}
		var res *sparql.Results
		var qmeta endpoint.QueryMeta
		var err error
		winRep := cands[k]
		if hedge > 0 && k+1 < len(cands) {
			var winner int
			res, qmeta, winner, err = g.hedgedCall(ctx, cands[k], cands[k+1], req, hedge)
			if winner == 1 {
				winRep = cands[k+1]
				hedged = true
			}
			out.replica = winRep.index
		} else {
			res, qmeta, err = endpoint.QueryX(ctx, cands[k].client, req)
			out.replica = cands[k].index
		}
		out.attempts += qmeta.Attempts
		out.retries += qmeta.Retries
		if err == nil {
			if qmeta.Generation != 0 {
				winRep.lastGen.Store(qmeta.Generation)
			}
			out.res, out.err = res, nil
			return out
		}
		out.err = err
		if ctx.Err() != nil || !failoverable(err) {
			return out
		}
	}
	if out.err == nil {
		out.err = fmt.Errorf("shard %d: no replicas", g.shard)
	}
	return out
}

// hedgedAnswer is one leg's result in a hedged pair.
type hedgedAnswer struct {
	res  *sparql.Results
	meta endpoint.QueryMeta
	err  error
	leg  int
}

// hedgedCall races primary against a delayed secondary: the secondary
// only starts once the primary has used up the hedge budget, and the
// first success wins (the loser's context is cancelled). Both legs
// hold identical data, so whichever answers, the bytes are the same —
// hedging trades a little duplicate work for tail latency. Returns
// the winning leg (0 = primary) for accounting.
func (g *replicaSet) hedgedCall(ctx context.Context, primary, secondary *replica, req endpoint.Request, hedge time.Duration) (*sparql.Results, endpoint.QueryMeta, int, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan hedgedAnswer, 2)
	launch := func(r *replica, leg int) {
		res, meta, err := endpoint.QueryX(hctx, r.client, req)
		ch <- hedgedAnswer{res: res, meta: meta, err: err, leg: leg}
	}
	go launch(primary, 0)

	timer := time.NewTimer(hedge)
	defer timer.Stop()
	inFlight := 1
	select {
	case a := <-ch:
		// Primary answered (either way) within the budget: no hedge.
		return a.res, a.meta, a.leg, a.err
	case <-timer.C:
		g.mHedge(false)
		go launch(secondary, 1)
		inFlight = 2
	case <-ctx.Done():
		// Caller gone; report through the primary leg.
		a := <-ch
		return a.res, a.meta, a.leg, a.err
	}

	var firstErr *hedgedAnswer
	for i := 0; i < inFlight; i++ {
		a := <-ch
		if a.err == nil {
			if a.leg == 1 {
				g.mHedge(true)
			}
			return a.res, a.meta, a.leg, nil
		}
		if firstErr == nil {
			cp := a
			firstErr = &cp
		}
		if !failoverable(a.err) || ctx.Err() != nil {
			return a.res, a.meta, a.leg, a.err
		}
	}
	return firstErr.res, firstErr.meta, firstErr.leg, firstErr.err
}

// mHedge counts hedge launches and wins through the owning
// coordinator's metrics (wired at view build).
func (g *replicaSet) mHedge(win bool) {
	if g.hedges == nil {
		return
	}
	if win {
		g.hedgeWins.Inc()
	} else {
		g.hedges.Inc()
	}
}

// shardCall renders a group outcome as the per-shard accounting line.
func (o groupResult) shardCall(shard int, wall time.Duration) obs.ShardCall {
	call := obs.ShardCall{
		Shard:     shard,
		Replica:   o.replica,
		WallMS:    float64(wall) / float64(time.Millisecond),
		Attempts:  o.attempts,
		Retries:   o.retries,
		Failovers: o.failovers,
	}
	if o.res != nil {
		call.Rows = o.res.Len()
	}
	if o.err != nil {
		call.Error = o.err.Error()
	}
	return call
}

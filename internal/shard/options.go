package shard

import (
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
)

// Option tunes a Coordinator at construction, mirroring
// endpoint.Option. The zero configuration (no options) is usable:
// full resilience with the default policy, strict (non-degraded)
// failure handling, scatter width = shard count, no prober, no
// hedging, no metrics, plan cache on at DefaultPlanCacheSize.
type Option func(*Config)

// applyOptions folds the options over a zero Config.
func applyOptions(opts []Option) Config {
	var cfg Config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithConfig applies a whole Config bag at once, replacing whatever
// earlier options set.
//
// Deprecated: the struct-literal configuration is kept one release as
// a migration adapter; compose the individual With* options instead.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithWorkers bounds scatter concurrency and the local engine workers
// on the gather path; <= 0 means one goroutine per shard.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithDegraded serves partial results when shards fail: failed shards
// are skipped and the answer's QueryMeta.Incomplete is set, with the
// skipped shard indices in QueryMeta.SkippedShards. When off (the
// default) any shard failure fails the query. An all-shards failure
// is an error in either mode.
func WithDegraded(on bool) Option {
	return func(c *Config) { c.Degraded = on }
}

// WithPolicy sets the per-replica resilience policy (each replica not
// already resilient is wrapped in its own endpoint.NewResilient, so
// one misbehaving replica trips only its own breaker).
func WithPolicy(p endpoint.Policy) Option {
	return func(c *Config) { c.Policy = &p }
}

// WithoutResilience skips the per-replica ResilientClient wrapping
// (tests, or callers that bring their own).
func WithoutResilience() Option {
	return func(c *Config) { c.NoResilience = true }
}

// WithHealth enables the background replica prober. A zero Interval
// disables it (failover alone then handles faults, and Ready reports
// ready immediately).
func WithHealth(h HealthConfig) Option {
	return func(c *Config) { c.Health = h }
}

// WithHedge hedges slow shard calls: if the preferred replica has not
// answered within the budget, the same query is also sent to the next
// candidate replica and the first answer wins. Replicas hold
// identical partitions, so hedging cannot change result bytes — only
// tail latency.
func WithHedge(after time.Duration) Option {
	return func(c *Config) { c.HedgeAfter = after }
}

// WithRegistry wires the coordinator metrics: per-shard call
// counters/latency/failovers, per-replica health gauges, plan and
// plan-cache counters, fan-out and in-flight gauges, merge-phase
// timings, hedge, degraded-mode, and topology-reload counters.
func WithRegistry(r *obs.Registry) Option {
	return func(c *Config) { c.Registry = r }
}

// WithPlanCache sizes the coordinator plan cache (parse + classify +
// rewrite memoized by query text, LRU eviction). capacity <= 0
// disables caching; without this option the cache holds
// DefaultPlanCacheSize plans.
func WithPlanCache(capacity int) Option {
	return func(c *Config) {
		if capacity <= 0 {
			c.PlanCacheSize = -1
			return
		}
		c.PlanCacheSize = capacity
	}
}

// WithFleet enables the fleet metrics collector: the coordinator
// scrapes every HTTP replica's /metrics (on the configured interval,
// or on demand per FleetHandler request when the interval is zero)
// and serves the merged exposition — counters summed, histogram
// buckets summed with quantiles recomputed, per-process gauges
// passthrough with an `instance` label, staleness gauges for
// unreachable replicas — at FleetHandler (/metrics/fleet).
func WithFleet(cfg FleetConfig) Option {
	return func(c *Config) { c.Fleet = &cfg }
}

// WithBoundJoinChunk caps the VALUES rows shipped per bound-join
// fetch query; <= 0 means DefaultBoundJoinChunk. Chunk boundaries are
// computed on the canonically sorted binding set, so the generated
// queries stay deterministic at any size.
func WithBoundJoinChunk(n int) Option {
	return func(c *Config) { c.BoundJoinChunk = n }
}

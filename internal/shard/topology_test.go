package shard

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/rdf"
	"re2xolap/internal/store"
)

func TestTopologyViewValidateEqual(t *testing.T) {
	good := TopologyView{Groups: [][]string{{"a", "b"}, {"c"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []TopologyView{
		{},
		{Groups: [][]string{{}}},
		{Groups: [][]string{{"a"}, {""}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%v): want error", bad)
		}
	}
	if !good.Equal(TopologyView{Groups: [][]string{{"a", "b"}, {"c"}}}) {
		t.Error("identical views must be Equal")
	}
	for _, other := range []TopologyView{
		{Groups: [][]string{{"a"}, {"c"}}},
		{Groups: [][]string{{"a", "b"}}},
		{Groups: [][]string{{"b", "a"}, {"c"}}},
	} {
		if good.Equal(other) {
			t.Errorf("Equal(%v): want false", other)
		}
	}
}

func TestFileTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	write := func(body string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ft := NewFileTopology(path)
	if _, err := ft.Resolve(); err == nil {
		t.Fatal("missing file must error")
	}
	write(`{"shards": [["http://a/sparql", "http://b/sparql"], ["http://c/sparql"]]}`)
	v, err := ft.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Groups) != 2 || len(v.Groups[0]) != 2 || v.Groups[1][0] != "http://c/sparql" {
		t.Fatalf("Resolve = %v", v)
	}
	if changed, err := ft.Changed(); err != nil || changed {
		t.Fatalf("unchanged file reported changed (%v, %v)", changed, err)
	}
	// mtime granularity can be coarse; force a size change.
	write(`{"shards": [["http://a/sparql", "http://b/sparql"], ["http://c/sparql", "http://d/sparql"]]}`)
	if changed, err := ft.Changed(); err != nil || !changed {
		t.Fatalf("rewritten file not reported changed (%v, %v)", changed, err)
	}
	write(`{"shards": [[]]}`)
	if _, err := ft.Resolve(); err == nil {
		t.Fatal("empty group must error")
	}
	write(`not json`)
	if _, err := ft.Resolve(); err == nil {
		t.Fatal("bad JSON must error")
	}
}

// A rewrite that keeps the byte count and lands within the
// filesystem's mtime granularity is invisible to the stat-only check;
// the content-hash fallback must still report it. os.Chtimes pins the
// mtime to make the collision deterministic rather than relying on a
// fast filesystem.
func TestFileTopologyChangedSameMtimeSameSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	before := `{"shards": [["http://aaaa/sparql"], ["http://cccc/sparql"]]}`
	after := `{"shards": [["http://cccc/sparql"], ["http://aaaa/sparql"]]}`
	if len(before) != len(after) {
		t.Fatalf("test payloads differ in size: %d vs %d", len(before), len(after))
	}
	if err := os.WriteFile(path, []byte(before), 0o644); err != nil {
		t.Fatal(err)
	}
	ft := NewFileTopology(path)
	if _, err := ft.Resolve(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	mtime := st.ModTime()
	if err := os.WriteFile(path, []byte(after), 0o644); err != nil {
		t.Fatal(err)
	}
	// Pin the rewrite to the original mtime: stat now sees identical
	// mtime AND size.
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
	changed, err := ft.Changed()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("same-mtime same-size rewrite not detected: content hash fallback broken")
	}
	// After re-resolving the new content, the poller settles again.
	if _, err := ft.Resolve(); err != nil {
		t.Fatal(err)
	}
	if changed, err := ft.Changed(); err != nil || changed {
		t.Fatalf("settled file reported changed (%v, %v)", changed, err)
	}
}

// dynamicHarness wires a NewDynamic coordinator whose dialer serves
// in-process partition replicas keyed by spec, tracking every dialed
// client so tests can kill replicas and count dials.
type dynamicHarness struct {
	parts [][]rdf.Triple

	mu     sync.Mutex
	dials  int
	faults map[string]*endpoint.FaultClient
}

// dial maps spec "pN[-suffix]" to a FaultClient over partition N of
// the shard it is asked for (every replica of shard i serves
// partition i, whatever the spec says — specs are just identities).
func (h *dynamicHarness) dial(shard, replica int, spec string) (endpoint.Client, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dials++
	st := store.New()
	if err := st.AddAll(h.parts[shard]); err != nil {
		return nil, err
	}
	f := endpoint.NewFault(endpoint.NewInProcess(st), endpoint.FaultConfig{})
	h.faults[spec] = f
	return f, nil
}

// mutableTopology is a Topology tests can swap at will.
type mutableTopology struct {
	mu sync.Mutex
	v  TopologyView
}

func (m *mutableTopology) Resolve() (TopologyView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.v, m.v.Validate()
}

func (m *mutableTopology) set(v TopologyView) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.v = v
}

// TestLiveReloadAddReplicaAndFailover is the live-elasticity
// acceptance scenario: a coordinator built over single-replica shards
// gains a second replica per shard via Reload — no restart — and when
// the original replicas are then killed, queries keep returning
// complete byte-identical answers through the added replicas.
func TestLiveReloadAddReplicaAndFailover(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	h := &dynamicHarness{
		parts:  Partitioner{N: n}.Split(ts),
		faults: map[string]*endpoint.FaultClient{},
	}
	topo := &mutableTopology{v: TopologyView{Groups: [][]string{{"p0"}, {"p1"}, {"p2"}}}}
	reg := obs.NewRegistry()
	c, err := NewDynamic(topo, h.dial, WithoutResilience(), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	want := corpusBaseline(t, ts, n)
	query := `SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ?s`
	res, _, err := c.QueryX(context.Background(), endpoint.Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	preReload := encode(t, res)

	// Same view: Reload is a no-op.
	if changed, err := c.Reload(); err != nil || changed {
		t.Fatalf("no-op reload: changed=%v err=%v", changed, err)
	}

	// Add a second replica to every shard, live.
	topo.set(TopologyView{Groups: [][]string{{"p0", "p0b"}, {"p1", "p1b"}, {"p2", "p2b"}}})
	dialsBefore := func() int { h.mu.Lock(); defer h.mu.Unlock(); return h.dials }()
	changed, err := c.Reload()
	if err != nil || !changed {
		t.Fatalf("reload: changed=%v err=%v", changed, err)
	}
	if got := func() int { h.mu.Lock(); defer h.mu.Unlock(); return h.dials }() - dialsBefore; got != 3 {
		t.Fatalf("reload dialed %d new clients, want 3 (persisting replicas must be reused)", got)
	}
	if got := c.Replicas(); len(got) != 3 || got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("Replicas() = %v, want [2 2 2]", got)
	}

	// Kill every original replica: the reloaded replicas carry the load.
	for _, spec := range []string{"p0", "p1", "p2"} {
		h.faults[spec].SetDown(true)
	}
	runCorpusComplete(t, c, want, "post-reload")

	// Bytes stable across the reload too.
	res, meta, err := c.QueryX(context.Background(), endpoint.Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Incomplete {
		t.Fatal("degraded after reload")
	}
	if !bytes.Equal(encode(t, res), preReload) {
		t.Fatal("answer bytes changed across topology reload")
	}

	// Epoch and reload counters moved.
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, wantLine := range []string{
		"re2xolap_topology_reloads_total 1",
		"re2xolap_topology_epoch 1",
		"re2xolap_shard_replicas 6",
		"re2xolap_shard_fanout 3",
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("exposition missing %q", wantLine)
		}
	}
}

// TestReloadDrainsInFlight checks an in-flight query keeps its
// topology generation: reloads mid-query must not perturb results.
func TestReloadDrainsInFlight(t *testing.T) {
	ts := determinismTriples()
	const n = 2
	h := &dynamicHarness{
		parts:  Partitioner{N: n}.Split(ts),
		faults: map[string]*endpoint.FaultClient{},
	}
	topo := &mutableTopology{v: TopologyView{Groups: [][]string{{"a"}, {"b"}}}}
	c, err := NewDynamic(topo, h.dial, WithoutResilience())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	query := `SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`
	res, _, err := c.QueryX(context.Background(), endpoint.Request{Query: query})
	if err != nil {
		t.Fatal(err)
	}
	want := encode(t, res)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			flip = !flip
			if flip {
				topo.set(TopologyView{Groups: [][]string{{"a", "a2"}, {"b", "b2"}}})
			} else {
				topo.set(TopologyView{Groups: [][]string{{"a"}, {"b"}}})
			}
			if _, err := c.Reload(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 30; i++ {
		res, meta, err := c.QueryX(context.Background(), endpoint.Request{Query: query})
		if err != nil {
			t.Fatal(err)
		}
		if meta.Incomplete {
			t.Fatal("degraded under reload churn")
		}
		if !bytes.Equal(encode(t, res), want) {
			t.Fatal("result bytes changed under reload churn")
		}
	}
	close(stop)
	wg.Wait()
}

// TestStaticTopologyReloadErrors: coordinators built from explicit
// client lists cannot re-resolve.
func TestStaticTopologyReloadErrors(t *testing.T) {
	ts := determinismTriples()
	c := newTopology(t, ts, 2, Config{})
	if _, err := c.Reload(); err == nil {
		t.Fatal("static topology must refuse Reload")
	}
}

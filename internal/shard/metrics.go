package shard

import (
	"fmt"
	"time"

	"re2xolap/internal/obs"
)

// metrics is the coordinator's registry series. Coordinator-wide
// series are pre-created here; per-shard and per-replica series are
// created at view build (the registry dedupes by name+labels, so
// rebuilding a view after a topology reload reuses the existing
// instances). nil disables everything through the obs nil fast paths.
type metrics struct {
	reg *obs.Registry // for per-shard/per-replica series at view build

	plans      map[planKind]*obs.Counter
	inflight   *obs.Gauge
	mergePhase map[string]*obs.Histogram
	incomplete *obs.Counter
	skipped    *obs.Counter

	boundBindings *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	cacheEvicts   *obs.Counter
	cacheSize     *obs.Gauge

	hedges    *obs.Counter
	hedgeWins *obs.Counter
	reloads   *obs.Counter
	epoch     *obs.Gauge
	toUp      *obs.Counter
	toDown    *obs.Counter

	fleetScrapeOK  *obs.Counter
	fleetScrapeErr *obs.Counter
	fleetCollectS  *obs.Histogram
}

// mergePhases is the label vocabulary of the merge-phase histogram.
// "join" is the bound-join probe phase (streaming shard rows through
// the coordinator's hash join).
var mergePhases = [...]string{"scatter", "join", "merge", "finalize"}

// newMetrics registers the coordinator-wide series. fanout and
// replicas report the *current* view's shard and replica counts, so
// the gauges track live topology reloads.
func newMetrics(reg *obs.Registry, fanout, replicas func() float64) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		reg:        reg,
		plans:      make(map[planKind]*obs.Counter, len(planKinds)),
		mergePhase: make(map[string]*obs.Histogram, len(mergePhases)),
		inflight: reg.Gauge("re2xolap_shard_scatter_inflight",
			"Per-shard requests currently in flight from the coordinator."),
		incomplete: reg.Counter("re2xolap_shard_incomplete_total",
			"Degraded-mode answers served without one or more failed shards."),
		skipped: reg.Counter("re2xolap_shard_skipped_total",
			"Shard responses dropped from an answer in degraded mode."),
		boundBindings: reg.Counter("re2xolap_shard_bound_bindings_total",
			"Distinct binding rows shipped as VALUES constraints by bound-join fetches."),
		cacheHits: reg.Counter("re2xolap_shard_plan_cache_hits_total",
			"Coordinator queries answered from the plan cache."),
		cacheMisses: reg.Counter("re2xolap_shard_plan_cache_misses_total",
			"Coordinator queries that had to parse and classify."),
		cacheEvicts: reg.Counter("re2xolap_shard_plan_cache_evictions_total",
			"Plan-cache entries evicted by LRU capacity pressure."),
		cacheSize: reg.Gauge("re2xolap_shard_plan_cache_size",
			"Plans currently held by the coordinator plan cache."),
		hedges: reg.Counter("re2xolap_shard_hedges_total",
			"Hedged second requests launched after the latency budget."),
		hedgeWins: reg.Counter("re2xolap_shard_hedge_wins_total",
			"Hedged requests that answered before the primary."),
		reloads: reg.Counter("re2xolap_topology_reloads_total",
			"Live topology reloads applied by the coordinator."),
		epoch: reg.Gauge("re2xolap_topology_epoch",
			"Monotonic topology version; bumps on every applied reload."),
		toUp: reg.Counter("re2xolap_replica_transitions_total",
			"Replica health-state transitions.", obs.L("to", "up")),
		toDown: reg.Counter("re2xolap_replica_transitions_total",
			"Replica health-state transitions.", obs.L("to", "down")),
		fleetScrapeOK: reg.Counter("re2xolap_fleet_scrapes_total",
			"Fleet collector scrape attempts by outcome.", obs.L("outcome", "ok")),
		fleetScrapeErr: reg.Counter("re2xolap_fleet_scrapes_total",
			"Fleet collector scrape attempts by outcome.", obs.L("outcome", "error")),
		fleetCollectS: reg.Histogram("re2xolap_fleet_collect_seconds",
			"Wall time of one fleet collection sweep.", nil),
	}
	reg.GaugeFunc("re2xolap_shard_fanout", "Shards behind the coordinator.", fanout)
	reg.GaugeFunc("re2xolap_shard_replicas", "Replica endpoints across all shards.", replicas)
	for _, k := range planKinds {
		m.plans[k] = reg.Counter("re2xolap_shard_plans_total",
			"Coordinator queries by scatter-gather plan.", obs.L("plan", k.String()))
	}
	for _, p := range mergePhases {
		m.mergePhase[p] = reg.Histogram("re2xolap_shard_merge_seconds",
			"Coordinator time by merge phase.", nil, obs.L("phase", p))
	}
	return m
}

// wireShard attaches the per-shard series to a replica set at view
// build. Safe on a nil receiver (registry absent): the handles stay
// nil and no-op.
func (m *metrics) wireShard(g *replicaSet) {
	if m == nil {
		return
	}
	l := obs.L("shard", fmt.Sprint(g.shard))
	g.mQueries = m.reg.Counter("re2xolap_shard_queries_total",
		"Queries the coordinator scattered, by shard.", l)
	g.mErrors = m.reg.Counter("re2xolap_shard_errors_total",
		"Failed shard calls, by shard (post-resilience and failover).", l)
	g.mLatency = m.reg.Histogram("re2xolap_shard_query_seconds",
		"Per-shard call latency as seen by the coordinator.", nil, l)
	g.mFailovers = m.reg.Counter("re2xolap_shard_failovers_total",
		"Shard calls that fell through to another replica.", l)
	g.hedges, g.hedgeWins = m.hedges, m.hedgeWins
}

// wireReplica attaches the per-replica series at view build: the
// up/down gauge (initialized from the current health state) and the
// probe-latency histogram.
func (m *metrics) wireReplica(r *replica) {
	if m == nil {
		return
	}
	ls := []obs.Label{obs.L("shard", fmt.Sprint(r.shard)), obs.L("replica", fmt.Sprint(r.index))}
	r.mUp = m.reg.Gauge("re2xolap_replica_up",
		"1 while the replica is considered healthy by the prober.", ls...)
	r.mProbe = m.reg.Histogram("re2xolap_replica_probe_seconds",
		"Health-probe latency, by replica.", nil, ls...)
	if r.health.up.Load() {
		r.mUp.Set(1)
	} else {
		r.mUp.Set(0)
	}
}

// shardCall records one resolved shard call on the set's series.
func (g *replicaSet) shardCallMetrics(wall time.Duration, err error) {
	g.mQueries.Inc()
	g.mLatency.ObserveDuration(wall)
	if err != nil {
		g.mErrors.Inc()
	}
}

func (m *metrics) plan(k planKind) {
	if m == nil {
		return
	}
	m.plans[k].Inc()
}

func (m *metrics) phase(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mergePhase[name].ObserveDuration(d)
}

func (m *metrics) scatterStart() {
	if m == nil {
		return
	}
	m.inflight.Inc()
}

func (m *metrics) scatterEnd() {
	if m == nil {
		return
	}
	m.inflight.Dec()
}

// boundShipped counts distinct bindings shipped by one bound-join step.
func (m *metrics) boundShipped(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.boundBindings.Add(int64(n))
}

func (m *metrics) planCacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Inc()
}

func (m *metrics) planCacheMiss() {
	if m == nil {
		return
	}
	m.cacheMisses.Inc()
}

func (m *metrics) planCacheEvict() {
	if m == nil {
		return
	}
	m.cacheEvicts.Inc()
}

func (m *metrics) planCacheSize(n int) {
	if m == nil {
		return
	}
	m.cacheSize.Set(int64(n))
}

func (m *metrics) degraded(skipped int) {
	if m == nil {
		return
	}
	m.incomplete.Inc()
	m.skipped.Add(int64(skipped))
}

// transition counts one replica up/down flip.
func (m *metrics) transition(up bool) {
	if m == nil {
		return
	}
	if up {
		m.toUp.Inc()
	} else {
		m.toDown.Inc()
	}
}

// fleetScrape counts one fleet scrape attempt.
func (m *metrics) fleetScrape(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.fleetScrapeOK.Inc()
	} else {
		m.fleetScrapeErr.Inc()
	}
}

// fleetCollect records one collection sweep's wall time.
func (m *metrics) fleetCollect(d time.Duration) {
	if m == nil {
		return
	}
	m.fleetCollectS.ObserveDuration(d)
}

// reloaded records one applied topology reload at the given epoch.
func (m *metrics) reloaded(epoch int64) {
	if m == nil {
		return
	}
	m.reloads.Inc()
	m.epoch.Set(epoch)
}

package shard

import (
	"fmt"
	"time"

	"re2xolap/internal/obs"
)

// metrics is the coordinator's registry series, pre-created at
// construction. nil disables everything through the obs nil fast
// paths.
type metrics struct {
	// per shard, labeled shard="<i>"
	queries []*obs.Counter
	errors  []*obs.Counter
	latency []*obs.Histogram

	plans      map[planKind]*obs.Counter
	inflight   *obs.Gauge
	mergePhase map[string]*obs.Histogram
	incomplete *obs.Counter
	skipped    *obs.Counter
}

// mergePhases is the label vocabulary of the merge-phase histogram.
var mergePhases = [...]string{"scatter", "merge", "finalize"}

// newMetrics registers the coordinator series for an n-shard topology.
func newMetrics(reg *obs.Registry, n int) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		plans:      make(map[planKind]*obs.Counter, len(planKinds)),
		mergePhase: make(map[string]*obs.Histogram, len(mergePhases)),
		inflight: reg.Gauge("re2xolap_shard_scatter_inflight",
			"Per-shard requests currently in flight from the coordinator."),
		incomplete: reg.Counter("re2xolap_shard_incomplete_total",
			"Degraded-mode answers served without one or more failed shards."),
		skipped: reg.Counter("re2xolap_shard_skipped_total",
			"Shard responses dropped from an answer in degraded mode."),
	}
	reg.GaugeFunc("re2xolap_shard_fanout", "Shards behind the coordinator.",
		func() float64 { return float64(n) })
	for i := 0; i < n; i++ {
		l := obs.L("shard", fmt.Sprint(i))
		m.queries = append(m.queries, reg.Counter("re2xolap_shard_queries_total",
			"Queries the coordinator scattered, by shard.", l))
		m.errors = append(m.errors, reg.Counter("re2xolap_shard_errors_total",
			"Failed shard calls, by shard (post-resilience).", l))
		m.latency = append(m.latency, reg.Histogram("re2xolap_shard_query_seconds",
			"Per-shard call latency as seen by the coordinator.", nil, l))
	}
	for _, k := range planKinds {
		m.plans[k] = reg.Counter("re2xolap_shard_plans_total",
			"Coordinator queries by scatter-gather plan.", obs.L("plan", k.String()))
	}
	for _, p := range mergePhases {
		m.mergePhase[p] = reg.Histogram("re2xolap_shard_merge_seconds",
			"Coordinator time by merge phase.", nil, obs.L("phase", p))
	}
	return m
}

func (m *metrics) shardCall(i int, wall time.Duration, err error) {
	if m == nil {
		return
	}
	m.queries[i].Inc()
	m.latency[i].ObserveDuration(wall)
	if err != nil {
		m.errors[i].Inc()
	}
}

func (m *metrics) plan(k planKind) {
	if m == nil {
		return
	}
	m.plans[k].Inc()
}

func (m *metrics) phase(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mergePhase[name].ObserveDuration(d)
}

func (m *metrics) scatterStart() {
	if m == nil {
		return
	}
	m.inflight.Inc()
}

func (m *metrics) scatterEnd() {
	if m == nil {
		return
	}
	m.inflight.Dec()
}

func (m *metrics) degraded(skipped int) {
	if m == nil {
		return
	}
	m.incomplete.Inc()
	m.skipped.Add(int64(skipped))
}

package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"

	"re2xolap/internal/corpus"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// determinismTriples delegates to the shared determinism dataset
// (internal/corpus), which the serve-layer cache tests also run.
func determinismTriples() []rdf.Triple { return corpus.Triples() }

// corpusQuery is one determinism-suite entry; see corpus.Query for the
// engineCompare vocabulary ("exact", "set", "skip").
type corpusQuery struct {
	name          string
	query         string
	engineCompare string
}

// determinismCorpus adapts the shared 33-query corpus to the local
// field names the shard tests predate the extraction with.
func determinismCorpus() []corpusQuery {
	qs := corpus.Queries()
	out := make([]corpusQuery, len(qs))
	for i, q := range qs {
		out[i] = corpusQuery{name: q.Name, query: q.Query, engineCompare: q.EngineCompare}
	}
	return out
}

// newTopology splits the dataset over n in-process shard stores and
// returns a coordinator over them.
func newTopology(t *testing.T, ts []rdf.Triple, n int, cfg Config) *Coordinator {
	t.Helper()
	parts := Partitioner{N: n}.Split(ts)
	backends := make([]endpoint.Client, n)
	for i := 0; i < n; i++ {
		st := store.New()
		if err := st.AddAll(parts[i]); err != nil {
			t.Fatal(err)
		}
		backends[i] = endpoint.NewInProcess(st)
	}
	c, err := New(backends, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encode serializes a result set the way the protocol layer would:
// SPARQL JSON for SELECT/ASK, N-Triples text for CONSTRUCT graphs.
func encode(t *testing.T, res *sparql.Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if res.IsConstruct {
		for _, tr := range res.Triples {
			fmt.Fprintf(&buf, "%s %s %s .\n", tr.S, tr.P, tr.O)
		}
		return buf.Bytes()
	}
	if err := endpoint.EncodeResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// canonRows renders a result set's rows sorted canonically, for
// order-insensitive comparison against the engine.
func canonRows(res *sparql.Results) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = sparql.CanonicalRowKey(r)
	}
	sort.Strings(out)
	return out
}

// TestDeterminismAcrossTopologies is the acceptance test: for the
// full corpus, every topology (1, 2, 3, 5 shards) returns
// byte-identical JSON, and the answers agree with a single-node
// engine under each query's comparison mode.
func TestDeterminismAcrossTopologies(t *testing.T) {
	ts := determinismTriples()
	single := store.New()
	if err := single.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	engine := sparql.NewEngine(single)
	ctx := context.Background()

	topologies := []int{1, 2, 3, 5}
	coords := make([]*Coordinator, len(topologies))
	for i, n := range topologies {
		coords[i] = newTopology(t, ts, n, Config{})
	}

	for _, cq := range determinismCorpus() {
		t.Run(cq.name, func(t *testing.T) {
			var first []byte
			var firstRes *sparql.Results
			for i, n := range topologies {
				res, meta, err := coords[i].QueryX(ctx, endpoint.Request{Query: cq.query})
				if err != nil {
					t.Fatalf("%d shards: %v", n, err)
				}
				if meta.Incomplete {
					t.Fatalf("%d shards: unexpected incomplete flag", n)
				}
				enc := encode(t, res)
				if first == nil {
					first, firstRes = enc, res
					continue
				}
				if !bytes.Equal(first, enc) {
					t.Errorf("%d shards diverge from %d shards:\n%s\nvs\n%s",
						n, topologies[0], enc, first)
				}
			}

			want, err := engine.QueryString(cq.query)
			if err != nil {
				t.Fatalf("single node: %v", err)
			}
			switch cq.engineCompare {
			case "exact":
				if firstRes.IsAsk {
					if firstRes.Boolean != want.Boolean {
						t.Errorf("ask: coordinator %v, engine %v", firstRes.Boolean, want.Boolean)
					}
					return
				}
				g, w := canonRowsOrdered(firstRes), canonRowsOrdered(want)
				if fmt.Sprint(g) != fmt.Sprint(w) {
					t.Errorf("rows diverge from engine:\n got %v\nwant %v", g, w)
				}
			case "set":
				g, w := canonRows(firstRes), canonRows(want)
				if fmt.Sprint(g) != fmt.Sprint(w) {
					t.Errorf("row sets diverge from engine:\n got %v\nwant %v", g, w)
				}
			case "skip":
				if firstRes.Len() != want.Len() {
					t.Errorf("row count diverges from engine: got %d, want %d", firstRes.Len(), want.Len())
				}
			}
		})
	}
}

// canonRowsOrdered renders rows in result order (for exact compares).
func canonRowsOrdered(res *sparql.Results) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = sparql.CanonicalRowKey(r)
	}
	return out
}

// TestDeterminismMixedHTTPBackends runs part of the corpus against a
// topology mixing in-process and remote HTTP shards and checks the
// answers match the all-in-process topology byte for byte: the
// transport must not affect results.
func TestDeterminismMixedHTTPBackends(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	parts := Partitioner{N: n}.Split(ts)
	stores := make([]*store.Store, n)
	for i := range stores {
		stores[i] = store.New()
		if err := stores[i].AddAll(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 1 is remote: a real endpoint.Server behind httptest.
	srv := httptest.NewServer(endpoint.NewServer(stores[1]))
	defer srv.Close()
	mixed, err := New([]endpoint.Client{
		endpoint.NewInProcess(stores[0]),
		endpoint.NewHTTPClient(srv.URL),
		endpoint.NewInProcess(stores[2]),
	}, WithConfig(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	local := newTopology(t, ts, n, Config{})

	ctx := context.Background()
	for _, cq := range determinismCorpus() {
		res1, _, err := mixed.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (mixed): %v", cq.name, err)
		}
		res2, _, err := local.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (local): %v", cq.name, err)
		}
		if !bytes.Equal(encode(t, res1), encode(t, res2)) {
			t.Errorf("%s: mixed HTTP/in-process topology diverges from in-process", cq.name)
		}
	}
}

// TestBoundJoinChunkDeterminism re-runs the corpus with a tiny
// bound-join chunk size: chunk boundaries are computed on the
// canonically sorted binding set, so the VALUES-constrained fetch
// queries — and therefore the answer bytes — must not depend on the
// chunk size.
func TestBoundJoinChunkDeterminism(t *testing.T) {
	ts := determinismTriples()
	base := newTopology(t, ts, 3, Config{})
	small := newTopology(t, ts, 3, Config{BoundJoinChunk: 2})
	ctx := context.Background()
	for _, cq := range determinismCorpus() {
		res1, _, err := base.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (default chunk): %v", cq.name, err)
		}
		res2, _, err := small.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (chunk=2): %v", cq.name, err)
		}
		if !bytes.Equal(encode(t, res1), encode(t, res2)) {
			t.Errorf("%s: chunk=2 diverges from default chunk", cq.name)
		}
	}
}

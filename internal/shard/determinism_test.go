package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sort"
	"testing"

	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
)

// determinismTriples is the determinism-suite dataset: a handcrafted
// graph exercising every query shape (star BGPs, cross-subject joins,
// a transitive chain, text filters) plus a datagen corpus so the
// aggregate queries run over realistically skewed data. Fully
// deterministic: the handcrafted part is literal and datagen is
// seeded.
func determinismTriples() []rdf.Triple {
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }
	var ts []rdf.Triple
	add := func(s, p string, o rdf.Term) {
		ts = append(ts, rdf.Triple{S: iri(s), P: iri(p), O: o})
	}
	// Regions in a two-level hierarchy (cross-subject join target).
	for i := 0; i < 4; i++ {
		r := fmt.Sprintf("r%d", i)
		c := "cA"
		if i >= 2 {
			c = "cB"
		}
		add(r, "partOf", iri(c))
		add(r, "label", rdf.NewString(fmt.Sprintf("region %d", i)))
	}
	// Observations: distinct values so ORDER BY is a total order.
	for i := 0; i < 12; i++ {
		s := fmt.Sprintf("obs%d", i)
		add(s, "region", iri(fmt.Sprintf("r%d", i%4)))
		if i != 7 { // one observation misses its value
			add(s, "value", rdf.NewInteger(int64(100+i*7)))
		}
		label := fmt.Sprintf("obs %d", i)
		if i%5 == 0 {
			label += " special"
		}
		add(s, "label", rdf.NewString(label))
	}
	// A knows-chain for the transitive-closure query.
	add("p0", "knows", iri("p1"))
	add("p1", "knows", iri("p2"))
	add("p2", "knows", iri("p3"))
	add("p1", "knows", iri("p3"))
	// Seeded synthetic corpus for scale and skew.
	datagen.EurostatLike(150).Generate(func(t rdf.Triple) { ts = append(ts, t) })
	return ts
}

// corpusQuery is one determinism-suite entry. engineCompare selects
// how the N-shard answer is checked against the single-node engine:
// "exact" (same rows, same order), "set" (same rows, any order — for
// queries whose order the language leaves unspecified), "skip" (the
// coordinator legitimately picks a different representative: SAMPLE,
// GROUP_CONCAT, bare LIMIT without a total order).
type corpusQuery struct {
	name          string
	query         string
	engineCompare string
}

// determinismCorpus is the full query test corpus from the issue:
// ORDER BY+LIMIT, DISTINCT, HAVING, each aggregate, plus every
// fallback-triggering shape.
func determinismCorpus() []corpusQuery {
	return []corpusQuery{
		{"star-order-limit-offset",
			`SELECT ?s ?v WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } ORDER BY DESC(?v) LIMIT 5 OFFSET 2`,
			"exact"},
		{"star-order-asc",
			`SELECT ?s ?v WHERE { ?s <http://t/value> ?v } ORDER BY ASC(?v)`,
			"exact"},
		{"distinct",
			`SELECT DISTINCT ?r WHERE { ?s <http://t/region> ?r }`,
			"set"},
		{"bare-limit",
			`SELECT ?s WHERE { ?s <http://t/region> ?r } LIMIT 3`,
			"skip"}, // no total order: any 3 rows are a correct answer
		{"count-group",
			`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r`,
			"set"},
		{"count-star-group",
			`SELECT ?r (COUNT(*) AS ?n) WHERE { ?s <http://t/region> ?r } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"sum-avg",
			`SELECT ?r (SUM(?v) AS ?t) (AVG(?v) AS ?a) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"min-max",
			`SELECT ?r (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"global-agg",
			`SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?t) WHERE { ?s <http://t/value> ?v }`,
			"exact"},
		{"global-agg-empty",
			`SELECT (COUNT(?v) AS ?n) WHERE { ?s <http://t/nosuch> ?v }`,
			"exact"},
		{"having",
			`SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r HAVING (COUNT(?v) >= 3) ORDER BY ?r`,
			"exact"},
		{"agg-expr-projection",
			`SELECT ?r ((SUM(?v) + COUNT(?v)) AS ?mix) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"sample",
			`SELECT ?r (SAMPLE(?v) AS ?any) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"skip"}, // coordinator's canonical sample may differ from the engine's
		{"group-concat-gather",
			`SELECT ?r (GROUP_CONCAT(?v) AS ?all) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			// Concatenation order is implementation-defined (row order),
			// and the gather store's canonical load order differs from
			// the original store's insert order — topologies agree with
			// each other, not with the engine's element order.
			"skip"},
		{"count-distinct-gather",
			`SELECT ?r (COUNT(DISTINCT ?v) AS ?n) WHERE { ?s <http://t/region> ?r . ?s <http://t/value> ?v } GROUP BY ?r ORDER BY ?r`,
			"exact"},
		{"union",
			`SELECT ?s WHERE { { ?s <http://t/region> <http://t/r0> } UNION { ?s <http://t/region> <http://t/r1> } } ORDER BY ?s`,
			"exact"},
		{"optional",
			`SELECT ?s ?v WHERE { ?s <http://t/region> ?r . OPTIONAL { ?s <http://t/value> ?v } } ORDER BY ?s`,
			"exact"},
		{"filter-contains",
			`SELECT ?s WHERE { ?s <http://t/label> ?l . FILTER (CONTAINS(LCASE(STR(?l)), "special")) } ORDER BY ?s`,
			"exact"},
		{"filter-not-exists",
			`SELECT ?s WHERE { ?s <http://t/region> ?r . FILTER NOT EXISTS { ?s <http://t/value> ?v } } ORDER BY ?s`,
			"exact"},
		{"closure-gather",
			`SELECT ?b WHERE { <http://t/p0> <http://t/knows>+ ?b } ORDER BY ?b`,
			"exact"},
		{"join-bound",
			`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`,
			"exact"},
		{"join-bound-chain",
			`SELECT ?a ?c ?d WHERE { ?a <http://t/knows> ?b . ?b <http://t/knows> ?c . ?c <http://t/knows> ?d } ORDER BY ?a ?c ?d`,
			"exact"},
		{"join-bound-pushed-filter",
			`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c . FILTER(?c = <http://t/cA>) } ORDER BY ?s`,
			"exact"},
		{"join-bound-residual-filter",
			`SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c . FILTER(?s != ?c) } ORDER BY ?s`,
			"exact"},
		{"join-bound-distinct",
			`SELECT DISTINCT ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c }`,
			"set"},
		{"join-bound-expr-projection",
			`SELECT ?s (STR(?c) AS ?cs) WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`,
			"exact"},
		{"join-bound-empty",
			`SELECT ?s ?x WHERE { ?s <http://t/region> ?r . ?r <http://t/nosuch> ?x } ORDER BY ?s`,
			"exact"},
		{"join-bound-ask",
			`ASK { ?a <http://t/knows> ?b . ?b <http://t/knows> ?c }`,
			"exact"},
		{"values",
			`SELECT ?s ?v WHERE { VALUES ?r { <http://t/r0> <http://t/r2> } ?s <http://t/region> ?r . ?s <http://t/value> ?v } ORDER BY ?s`,
			"exact"},
		{"subselect-gather",
			`SELECT ?s ?v WHERE { { SELECT ?s WHERE { ?s <http://t/region> <http://t/r1> } } ?s <http://t/value> ?v } ORDER BY ?s`,
			"exact"},
		{"ask-true",
			`ASK { ?s <http://t/region> <http://t/r2> }`,
			"exact"},
		{"ask-false",
			`ASK { ?s <http://t/region> <http://t/r9> }`,
			"exact"},
		{"mixed-dataset-agg",
			`SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY ?p`,
			"exact"},
	}
}

// newTopology splits the dataset over n in-process shard stores and
// returns a coordinator over them.
func newTopology(t *testing.T, ts []rdf.Triple, n int, cfg Config) *Coordinator {
	t.Helper()
	parts := Partitioner{N: n}.Split(ts)
	backends := make([]endpoint.Client, n)
	for i := 0; i < n; i++ {
		st := store.New()
		if err := st.AddAll(parts[i]); err != nil {
			t.Fatal(err)
		}
		backends[i] = endpoint.NewInProcess(st)
	}
	c, err := New(backends, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// encode serializes a result set the way the protocol layer would:
// SPARQL JSON for SELECT/ASK, N-Triples text for CONSTRUCT graphs.
func encode(t *testing.T, res *sparql.Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if res.IsConstruct {
		for _, tr := range res.Triples {
			fmt.Fprintf(&buf, "%s %s %s .\n", tr.S, tr.P, tr.O)
		}
		return buf.Bytes()
	}
	if err := endpoint.EncodeResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// canonRows renders a result set's rows sorted canonically, for
// order-insensitive comparison against the engine.
func canonRows(res *sparql.Results) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = sparql.CanonicalRowKey(r)
	}
	sort.Strings(out)
	return out
}

// TestDeterminismAcrossTopologies is the acceptance test: for the
// full corpus, every topology (1, 2, 3, 5 shards) returns
// byte-identical JSON, and the answers agree with a single-node
// engine under each query's comparison mode.
func TestDeterminismAcrossTopologies(t *testing.T) {
	ts := determinismTriples()
	single := store.New()
	if err := single.AddAll(ts); err != nil {
		t.Fatal(err)
	}
	engine := sparql.NewEngine(single)
	ctx := context.Background()

	topologies := []int{1, 2, 3, 5}
	coords := make([]*Coordinator, len(topologies))
	for i, n := range topologies {
		coords[i] = newTopology(t, ts, n, Config{})
	}

	for _, cq := range determinismCorpus() {
		t.Run(cq.name, func(t *testing.T) {
			var first []byte
			var firstRes *sparql.Results
			for i, n := range topologies {
				res, meta, err := coords[i].QueryX(ctx, endpoint.Request{Query: cq.query})
				if err != nil {
					t.Fatalf("%d shards: %v", n, err)
				}
				if meta.Incomplete {
					t.Fatalf("%d shards: unexpected incomplete flag", n)
				}
				enc := encode(t, res)
				if first == nil {
					first, firstRes = enc, res
					continue
				}
				if !bytes.Equal(first, enc) {
					t.Errorf("%d shards diverge from %d shards:\n%s\nvs\n%s",
						n, topologies[0], enc, first)
				}
			}

			want, err := engine.QueryString(cq.query)
			if err != nil {
				t.Fatalf("single node: %v", err)
			}
			switch cq.engineCompare {
			case "exact":
				if firstRes.IsAsk {
					if firstRes.Boolean != want.Boolean {
						t.Errorf("ask: coordinator %v, engine %v", firstRes.Boolean, want.Boolean)
					}
					return
				}
				g, w := canonRowsOrdered(firstRes), canonRowsOrdered(want)
				if fmt.Sprint(g) != fmt.Sprint(w) {
					t.Errorf("rows diverge from engine:\n got %v\nwant %v", g, w)
				}
			case "set":
				g, w := canonRows(firstRes), canonRows(want)
				if fmt.Sprint(g) != fmt.Sprint(w) {
					t.Errorf("row sets diverge from engine:\n got %v\nwant %v", g, w)
				}
			case "skip":
				if firstRes.Len() != want.Len() {
					t.Errorf("row count diverges from engine: got %d, want %d", firstRes.Len(), want.Len())
				}
			}
		})
	}
}

// canonRowsOrdered renders rows in result order (for exact compares).
func canonRowsOrdered(res *sparql.Results) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = sparql.CanonicalRowKey(r)
	}
	return out
}

// TestDeterminismMixedHTTPBackends runs part of the corpus against a
// topology mixing in-process and remote HTTP shards and checks the
// answers match the all-in-process topology byte for byte: the
// transport must not affect results.
func TestDeterminismMixedHTTPBackends(t *testing.T) {
	ts := determinismTriples()
	const n = 3
	parts := Partitioner{N: n}.Split(ts)
	stores := make([]*store.Store, n)
	for i := range stores {
		stores[i] = store.New()
		if err := stores[i].AddAll(parts[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 1 is remote: a real endpoint.Server behind httptest.
	srv := httptest.NewServer(endpoint.NewServer(stores[1]))
	defer srv.Close()
	mixed, err := New([]endpoint.Client{
		endpoint.NewInProcess(stores[0]),
		endpoint.NewHTTPClient(srv.URL),
		endpoint.NewInProcess(stores[2]),
	}, WithConfig(Config{}))
	if err != nil {
		t.Fatal(err)
	}
	local := newTopology(t, ts, n, Config{})

	ctx := context.Background()
	for _, cq := range determinismCorpus() {
		res1, _, err := mixed.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (mixed): %v", cq.name, err)
		}
		res2, _, err := local.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (local): %v", cq.name, err)
		}
		if !bytes.Equal(encode(t, res1), encode(t, res2)) {
			t.Errorf("%s: mixed HTTP/in-process topology diverges from in-process", cq.name)
		}
	}
}

// TestBoundJoinChunkDeterminism re-runs the corpus with a tiny
// bound-join chunk size: chunk boundaries are computed on the
// canonically sorted binding set, so the VALUES-constrained fetch
// queries — and therefore the answer bytes — must not depend on the
// chunk size.
func TestBoundJoinChunkDeterminism(t *testing.T) {
	ts := determinismTriples()
	base := newTopology(t, ts, 3, Config{})
	small := newTopology(t, ts, 3, Config{BoundJoinChunk: 2})
	ctx := context.Background()
	for _, cq := range determinismCorpus() {
		res1, _, err := base.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (default chunk): %v", cq.name, err)
		}
		res2, _, err := small.QueryX(ctx, endpoint.Request{Query: cq.query})
		if err != nil {
			t.Fatalf("%s (chunk=2): %v", cq.name, err)
		}
		if !bytes.Equal(encode(t, res1), encode(t, res2)) {
			t.Errorf("%s: chunk=2 diverges from default chunk", cq.name)
		}
	}
}

package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/par"
	"re2xolap/internal/sparql"
)

// Config tunes a Coordinator. The zero value is usable: full
// resilience with the default policy, strict (non-degraded) failure
// handling, scatter width = shard count, no metrics.
type Config struct {
	// Workers bounds scatter concurrency and the local engine workers
	// on the gather path; <= 0 means one goroutine per shard.
	Workers int
	// Degraded serves partial results when shards fail: failed shards
	// are skipped and the answer's QueryMeta.Incomplete is set. When
	// false any shard failure fails the query (first error by shard
	// index). An all-shards failure is an error in either mode.
	Degraded bool
	// Policy is the per-shard resilience policy; nil means
	// endpoint.DefaultPolicy(). Each backend not already resilient is
	// wrapped in its own endpoint.NewResilient, so one misbehaving
	// shard trips only its own breaker.
	Policy *endpoint.Policy
	// NoResilience skips the per-shard ResilientClient wrapping
	// (tests, or callers that bring their own).
	NoResilience bool
	// Registry receives the coordinator metrics: per-shard call
	// counters/latency, plan counters, fan-out and in-flight gauges,
	// merge-phase timings, degraded-mode counters.
	Registry *obs.Registry
}

// Coordinator federates N shard backends behind the endpoint.Client
// and endpoint.QuerierX interfaces. It is safe for concurrent use.
type Coordinator struct {
	shards  []endpoint.Client
	workers int
	cfg     Config
	m       *metrics
}

// New builds a coordinator over the given shard backends (index =
// shard number under the Partitioner that split the data).
func New(backends []endpoint.Client, cfg Config) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, errors.New("shard: no backends")
	}
	shards := make([]endpoint.Client, len(backends))
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("shard: backend %d is nil", i)
		}
		shards[i] = b
		if cfg.NoResilience {
			continue
		}
		if _, ok := b.(*endpoint.ResilientClient); ok {
			continue
		}
		pol := endpoint.DefaultPolicy()
		if cfg.Policy != nil {
			pol = *cfg.Policy
		}
		shards[i] = endpoint.NewResilient(b, endpoint.WithPolicy(pol))
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = len(shards)
	}
	return &Coordinator{
		shards:  shards,
		workers: workers,
		cfg:     cfg,
		m:       newMetrics(cfg.Registry, len(shards)),
	}, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Query implements endpoint.Client as a thin adapter over QueryX.
func (c *Coordinator) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, endpoint.Request{Query: query})
	return res, err
}

// QueryX implements endpoint.QuerierX: it classifies the query,
// scatters it (or its rewritten form) to the shards, merges, and
// reports coordinator metadata. Meta.Incomplete is set when a
// degraded-mode answer skipped failed shards.
func (c *Coordinator) QueryX(ctx context.Context, req endpoint.Request) (*sparql.Results, endpoint.QueryMeta, error) {
	meta := endpoint.QueryMeta{Source: "coordinator", Step: req.Opts.Step}
	start := time.Now()
	q, err := sparql.Parse(req.Query)
	if err != nil {
		meta.Wall = time.Since(start)
		return nil, meta, endpoint.MarkPermanent(err)
	}
	kind, aggPlan := classify(q)
	c.m.plan(kind)
	meta.Plan = kind.String()

	parent := req.Opts.Span
	if parent == nil {
		parent = obs.SpanFrom(ctx)
	}
	span := parent.Start("scatter-gather")
	span.SetAttr("plan", kind.String())
	span.SetAttr("shards", fmt.Sprint(len(c.shards)))
	if req.Opts.Step != "" {
		span.SetAttr("step", req.Opts.Step)
	}
	defer span.End()
	if span != nil {
		ctx = obs.ContextWith(ctx, span)
	}

	var res *sparql.Results
	var calls []obs.ShardCall
	var incomplete bool
	switch kind {
	case planColocated:
		res, calls, incomplete, err = c.runColocated(ctx, q, req.Opts.Step)
	case planPartialAgg:
		res, calls, incomplete, err = c.runPartialAgg(ctx, q, aggPlan, req.Opts.Step)
	default:
		res, calls, incomplete, err = c.runGather(ctx, q, req.Opts.Step)
	}
	meta.Shards = calls
	meta.Wall = time.Since(start)
	if res != nil {
		meta.Rows = res.Len()
	}
	meta.Incomplete = incomplete
	if incomplete {
		span.SetAttr("incomplete", "true")
	}
	return res, meta, err
}

// scatterText sends one query text to every shard. results[i] is
// shard i's answer; a nil slot is a shard skipped in degraded mode
// (skipped > 0 then). In strict mode the first failure by shard index
// is returned; when every shard fails, the first failure is returned
// in either mode.
func (c *Coordinator) scatterText(ctx context.Context, query, step string) (results []*sparql.Results, calls []obs.ShardCall, skipped int, err error) {
	scatterStart := time.Now()
	defer func() { c.m.phase("scatter", time.Since(scatterStart)) }()
	n := len(c.shards)
	results = make([]*sparql.Results, n)
	calls = make([]obs.ShardCall, n)
	errs := make([]error, n)
	span := obs.SpanFrom(ctx)
	_ = par.Do(c.workers, n, func(i int) error {
		sp := span.Start(fmt.Sprintf("shard-%d", i))
		c.m.scatterStart()
		callStart := time.Now()
		res, qmeta, qerr := endpoint.QueryX(ctx, c.shards[i], endpoint.Request{
			Query: query,
			Opts:  endpoint.QueryOpts{Step: step, Span: sp},
		})
		wall := time.Since(callStart)
		c.m.scatterEnd()
		c.m.shardCall(i, wall, qerr)
		calls[i] = shardCall(i, wall, res, qmeta, qerr)
		if res != nil {
			sp.SetAttr("rows", fmt.Sprint(res.Len()))
		}
		if qerr != nil {
			sp.SetAttr("error", qerr.Error())
		}
		sp.End()
		results[i], errs[i] = res, qerr
		return nil
	})
	var firstErr error
	failed := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, errs[i])
			}
		}
	}
	if failed == 0 {
		return results, calls, 0, nil
	}
	if !c.cfg.Degraded || failed == n {
		return nil, calls, 0, firstErr
	}
	c.m.degraded(failed)
	return results, calls, failed, nil
}

// shardCall summarizes one shard round trip for QueryMeta.Shards (and
// through it the slow-query log and the /debug/queries ring).
func shardCall(i int, wall time.Duration, res *sparql.Results, qmeta endpoint.QueryMeta, qerr error) obs.ShardCall {
	call := obs.ShardCall{
		Shard:    i,
		WallMS:   float64(wall) / float64(time.Millisecond),
		Attempts: qmeta.Attempts,
		Retries:  qmeta.Retries,
	}
	if res != nil {
		call.Rows = res.Len()
	}
	if qerr != nil {
		call.Error = qerr.Error()
	}
	return call
}

// runColocated executes the colocated plan: strip the solution
// modifiers (they only apply to the global result), scatter, union
// the rows, and canonically finalize.
func (c *Coordinator) runColocated(ctx context.Context, q *sparql.Query, step string) (*sparql.Results, []obs.ShardCall, bool, error) {
	if q.Ask {
		return c.runAsk(ctx, q, step)
	}
	shardQ := stripModifiers(q)
	results, calls, skipped, err := c.scatterText(ctx, shardQ.String(), step)
	if err != nil {
		return nil, calls, false, err
	}
	mergeStart := time.Now()
	merged, err := unionResults(q, results)
	c.m.phase("merge", time.Since(mergeStart))
	if err != nil {
		return nil, calls, false, err
	}
	finStart := time.Now()
	sparql.MergeFinalize(q, merged)
	c.m.phase("finalize", time.Since(finStart))
	return merged, calls, skipped > 0, nil
}

// runAsk scatters a colocated ASK and ORs the shard booleans.
func (c *Coordinator) runAsk(ctx context.Context, q *sparql.Query, step string) (*sparql.Results, []obs.ShardCall, bool, error) {
	results, calls, skipped, err := c.scatterText(ctx, q.String(), step)
	if err != nil {
		return nil, calls, false, err
	}
	res := &sparql.Results{IsAsk: true}
	for _, r := range results {
		if r != nil && r.Boolean {
			res.Boolean = true
			break
		}
	}
	return res, calls, skipped > 0, nil
}

// runPartialAgg pushes partial aggregation to the shards and
// finalizes groups at the coordinator.
func (c *Coordinator) runPartialAgg(ctx context.Context, q *sparql.Query, plan *sparql.PartialAggPlan, step string) (*sparql.Results, []obs.ShardCall, bool, error) {
	results, calls, skipped, err := c.scatterText(ctx, plan.ShardQuery().String(), step)
	if err != nil {
		return nil, calls, false, err
	}
	mergeStart := time.Now()
	merged, err := plan.Merge(results)
	c.m.phase("merge", time.Since(mergeStart))
	if err != nil {
		return nil, calls, false, err
	}
	finStart := time.Now()
	sparql.MergeFinalize(q, merged)
	c.m.phase("finalize", time.Since(finStart))
	return merged, calls, skipped > 0, nil
}

// stripModifiers copies q without ORDER BY / LIMIT / OFFSET: those
// apply to the merged global result only. DISTINCT is kept — per-shard
// dedup is idempotent under the coordinator's re-dedup and cuts
// transfer. ORDER BY and LIMIT are deliberately NOT pushed down: a
// shard-local top-k under the engine's stable sort may cut ties
// differently than the coordinator's canonical order, making the
// answer depend on the topology.
func stripModifiers(q *sparql.Query) *sparql.Query {
	s := *q
	s.OrderBy = nil
	s.Limit = -1
	s.Offset = 0
	return &s
}

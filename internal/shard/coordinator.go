package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/par"
	"re2xolap/internal/sparql"
)

// Config tunes a Coordinator. The zero value is usable: full
// resilience with the default policy, strict (non-degraded) failure
// handling, scatter width = shard count, no prober, no hedging, no
// metrics, plan cache on at DefaultPlanCacheSize.
//
// Deprecated: Config is kept one release as a migration adapter —
// pass it through WithConfig. New code composes the With* Options
// directly (see options.go).
type Config struct {
	// Workers bounds scatter concurrency and the local engine workers
	// on the gather path; <= 0 means one goroutine per shard.
	Workers int
	// Degraded serves partial results when shards fail: failed shards
	// are skipped and the answer's QueryMeta.Incomplete is set, with
	// the skipped shard indices in QueryMeta.SkippedShards. When false
	// any shard failure fails the query (first error by shard index).
	// An all-shards failure is an error in either mode. A shard only
	// counts as failed once every one of its replicas has been tried.
	Degraded bool
	// Policy is the per-replica resilience policy; nil means
	// endpoint.DefaultPolicy(). Each replica not already resilient is
	// wrapped in its own endpoint.NewResilient, so one misbehaving
	// replica trips only its own breaker.
	Policy *endpoint.Policy
	// NoResilience skips the per-replica ResilientClient wrapping
	// (tests, or callers that bring their own).
	NoResilience bool
	// Health configures the background replica prober; a zero Interval
	// disables it (failover alone then handles faults, and Ready
	// reports ready immediately).
	Health HealthConfig
	// HedgeAfter, when > 0, hedges slow shard calls: if the preferred
	// replica has not answered within this budget, the same query is
	// also sent to the next candidate replica and the first answer
	// wins. Replicas hold identical partitions, so hedging cannot
	// change result bytes — only tail latency.
	HedgeAfter time.Duration
	// Registry receives the coordinator metrics: per-shard call
	// counters/latency/failovers, per-replica health gauges and probe
	// latency, plan counters, fan-out and in-flight gauges, merge-phase
	// timings, hedge and topology-reload counters, degraded-mode
	// counters.
	Registry *obs.Registry
	// PlanCacheSize caps the coordinator plan cache (parse + classify +
	// rewrite memoized by query text, LRU eviction): 0 means
	// DefaultPlanCacheSize, negative disables caching.
	PlanCacheSize int
	// BoundJoinChunk caps the VALUES rows shipped per bound-join fetch
	// query; <= 0 means DefaultBoundJoinChunk.
	BoundJoinChunk int
	// Fleet, when non-nil, enables the fleet metrics collector: the
	// coordinator scrapes every HTTP replica's /metrics and serves the
	// merged exposition via FleetHandler (see FleetConfig).
	Fleet *FleetConfig
}

// view is one immutable resolved topology generation. Queries load
// the pointer once and use that view end to end, so a concurrent
// Reload never mutates anything an in-flight query can see — old
// views drain naturally as their queries finish.
type view struct {
	tv     TopologyView
	groups []*replicaSet
}

// Coordinator federates N logical shards — each an ordered replica
// set — behind the endpoint.Client and endpoint.QuerierX interfaces.
// It is safe for concurrent use.
type Coordinator struct {
	cfg   Config
	m     *metrics
	cache *planCache // nil when caching is disabled
	topo  Topology
	dial  Dialer

	view  atomic.Pointer[view]
	epoch atomic.Int64

	reloadMu sync.Mutex // serializes Reload's read-build-swap

	probeCancel context.CancelFunc
	probeDone   chan struct{}

	fleet *fleetCollector // nil unless Config.Fleet is set
}

// New builds a coordinator over single-replica shards (index = shard
// number under the Partitioner that split the data) — the pre-replica
// constructor, kept as the common case.
func New(backends []endpoint.Client, opts ...Option) (*Coordinator, error) {
	groups := make([][]endpoint.Client, len(backends))
	for i, b := range backends {
		groups[i] = []endpoint.Client{b}
	}
	return NewReplicated(groups, opts...)
}

// NewReplicated builds a coordinator over explicit replica groups:
// groups[i] lists shard i's replicas in preference order, every
// replica holding the identical partition i. The topology is static;
// use NewDynamic for live re-resolution.
func NewReplicated(groups [][]endpoint.Client, opts ...Option) (*Coordinator, error) {
	if len(groups) == 0 {
		return nil, errors.New("shard: no backends")
	}
	c := newCoordinator(applyOptions(opts))
	tv := TopologyView{Groups: make([][]string, len(groups))}
	built := make([]*replicaSet, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no replicas", i)
		}
		set := &replicaSet{shard: i}
		c.m.wireShard(set)
		tv.Groups[i] = make([]string, len(g))
		for j, b := range g {
			if b == nil {
				return nil, fmt.Errorf("shard: shard %d replica %d is nil", i, j)
			}
			spec := fmt.Sprintf("client:%d/%d", i, j)
			tv.Groups[i][j] = spec
			set.replicas = append(set.replicas, c.newReplica(i, j, spec, b))
		}
		built[i] = set
	}
	c.view.Store(&view{tv: tv, groups: built})
	c.startProber()
	c.startFleet()
	return c, nil
}

// NewDynamic builds a coordinator whose topology can change at
// runtime: topo names the replica endpoints, dial turns each spec
// into a client, and Reload re-resolves the topology and swaps the
// serving view without dropping in-flight queries. Replicas whose
// spec persists across a reload keep their client, breaker, and
// health state.
func NewDynamic(topo Topology, dial Dialer, opts ...Option) (*Coordinator, error) {
	if topo == nil || dial == nil {
		return nil, errors.New("shard: NewDynamic needs a topology and a dialer")
	}
	c := newCoordinator(applyOptions(opts))
	c.topo, c.dial = topo, dial
	tv, err := topo.Resolve()
	if err != nil {
		return nil, err
	}
	v, err := c.buildView(tv, nil)
	if err != nil {
		return nil, err
	}
	c.view.Store(v)
	c.startProber()
	c.startFleet()
	return c, nil
}

// newCoordinator sets up the shared shell: config, metrics whose
// gauges read whatever view is current, and the plan cache.
func newCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{cfg: cfg}
	c.m = newMetrics(cfg.Registry,
		func() float64 { return float64(len(c.currentView().groups)) },
		func() float64 {
			n := 0
			for _, g := range c.currentView().groups {
				n += len(g.replicas)
			}
			return float64(n)
		})
	size := cfg.PlanCacheSize
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	if size > 0 {
		c.cache = newPlanCache(size, c.m)
	}
	return c
}

// planFor resolves a query text to its plan, consulting the cache
// first. Plans are pure functions of the text, so a hit skips parse,
// classification, and rewrite entirely. Parse failures are not
// cached: the caller turns them into permanent errors and malformed
// text should not occupy capacity.
func (c *Coordinator) planFor(text string) (queryPlan, error) {
	if p, ok := c.cache.get(text); ok {
		return p, nil
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return queryPlan{}, err
	}
	p := classify(q)
	c.cache.put(text, p)
	return p, nil
}

// currentView is the nil-tolerant view read (metrics gauge callbacks
// can fire between construction steps).
func (c *Coordinator) currentView() *view {
	if v := c.view.Load(); v != nil {
		return v
	}
	return &view{}
}

// newReplica wraps one dialed client as a replica: resilient wrapping
// on the query path (unless disabled or already resilient), the raw
// client on the probe path, fresh health state, and metric handles.
func (c *Coordinator) newReplica(shard, index int, spec string, b endpoint.Client) *replica {
	r := &replica{
		shard:  shard,
		index:  index,
		spec:   spec,
		raw:    b,
		client: b,
		health: newHealthState(),
	}
	if !c.cfg.NoResilience {
		if _, ok := b.(*endpoint.ResilientClient); !ok {
			pol := endpoint.DefaultPolicy()
			if c.cfg.Policy != nil {
				pol = *c.cfg.Policy
			}
			r.client = endpoint.NewResilient(b, endpoint.WithPolicy(pol))
		}
	}
	c.m.wireReplica(r)
	return r
}

// buildView materializes a resolved topology, reusing replicas from
// old whose (shard, spec) persists — their clients, breakers, and
// health history carry over, so a reload that only adds a replica
// does not reset anyone else's state.
func (c *Coordinator) buildView(tv TopologyView, old *view) (*view, error) {
	reuse := map[string][]*replica{}
	if old != nil {
		for _, g := range old.groups {
			for _, r := range g.replicas {
				k := fmt.Sprintf("%d|%s", r.shard, r.spec)
				reuse[k] = append(reuse[k], r)
			}
		}
	}
	groups := make([]*replicaSet, len(tv.Groups))
	for i, specs := range tv.Groups {
		set := &replicaSet{shard: i}
		c.m.wireShard(set)
		for j, spec := range specs {
			k := fmt.Sprintf("%d|%s", i, spec)
			if rs := reuse[k]; len(rs) > 0 {
				r := rs[0]
				reuse[k] = rs[1:]
				if r.index != j {
					// Same endpoint, new slot: re-wire the per-replica
					// series under the new index, keep all state.
					r.index = j
					c.m.wireReplica(r)
				}
				set.replicas = append(set.replicas, r)
				continue
			}
			b, err := c.dial(i, j, spec)
			if err != nil {
				return nil, fmt.Errorf("shard %d replica %d (%s): %w", i, j, spec, err)
			}
			set.replicas = append(set.replicas, c.newReplica(i, j, spec, b))
		}
		groups[i] = set
	}
	// Replicas dropped by the new view: zero their up gauge so the
	// exposition does not keep advertising a healthy slot that no
	// longer exists (the registry cannot unregister).
	for _, rs := range reuse {
		for _, r := range rs {
			r.mUp.Set(0)
		}
	}
	return &view{tv: tv, groups: groups}, nil
}

// Reload re-resolves the topology and atomically swaps the serving
// view. In-flight queries keep the view they started with and drain
// on it. Returns whether the view actually changed. Coordinators
// built over explicit client lists (New, NewReplicated) have a static
// topology and return an error.
func (c *Coordinator) Reload() (bool, error) {
	if c.topo == nil || c.dial == nil {
		return false, errors.New("shard: coordinator topology is static (built from explicit clients)")
	}
	c.reloadMu.Lock()
	defer c.reloadMu.Unlock()
	tv, err := c.topo.Resolve()
	if err != nil {
		return false, err
	}
	old := c.view.Load()
	if old.tv.Equal(tv) {
		return false, nil
	}
	nv, err := c.buildView(tv, old)
	if err != nil {
		return false, err
	}
	c.view.Store(nv)
	c.m.reloaded(c.epoch.Add(1))
	return true, nil
}

// startProber launches the background health prober when configured.
func (c *Coordinator) startProber() {
	if c.cfg.Health.Interval <= 0 {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.probeCancel = cancel
	c.probeDone = make(chan struct{})
	go c.probeLoop(ctx)
}

// Close stops the background prober and fleet collector (if any) and
// waits for them. The coordinator remains usable for queries
// afterwards; health states freeze at their last probed value.
func (c *Coordinator) Close() {
	if c.probeCancel != nil {
		c.probeCancel()
		<-c.probeDone
		c.probeCancel = nil
	}
	c.stopFleet()
}

// Generation implements endpoint.GenerationSource with a composed
// token over the current topology: an FNV-1a hash folding every
// shard's index, replica spec, and replica generation (a live store
// read for in-process backends, the last query-reported value for
// remote ones). It is a hash, not a counter — per-replica counters are
// not comparable across failover — so the contract is "equal tokens ⇒
// same data version for cache purposes": any shard mutation, topology
// change, or replica switch changes the token and invalidates cached
// answers. A spurious change only costs a cache miss.
func (c *Coordinator) Generation() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	v := c.currentView()
	for i, g := range v.groups {
		mix(uint64(i))
		for _, r := range g.replicas {
			for j := 0; j < len(r.spec); j++ {
				h ^= uint64(r.spec[j])
				h *= prime64
			}
			mix(r.generation())
		}
	}
	if h == 0 {
		h = offset64 // zero means "no generation" at the endpoint layer
	}
	return h
}

// Shards returns the current shard count.
func (c *Coordinator) Shards() int { return len(c.currentView().groups) }

// Replicas returns the current replica count per shard.
func (c *Coordinator) Replicas() []int {
	v := c.currentView()
	out := make([]int, len(v.groups))
	for i, g := range v.groups {
		out[i] = len(g.replicas)
	}
	return out
}

// workersFor bounds scatter concurrency for an n-shard view.
func (c *Coordinator) workersFor(n int) int {
	if c.cfg.Workers > 0 {
		return c.cfg.Workers
	}
	return n
}

// Query implements endpoint.Client as a thin adapter over QueryX.
func (c *Coordinator) Query(ctx context.Context, query string) (*sparql.Results, error) {
	res, _, err := c.QueryX(ctx, endpoint.Request{Query: query})
	return res, err
}

// QueryX implements endpoint.QuerierX: it classifies the query,
// scatters it (or its rewritten form) to the shards — each call
// routed to the shard's first healthy replica with failover — merges,
// and reports coordinator metadata. Meta.Incomplete is set when a
// degraded-mode answer skipped failed shards, with the indices in
// Meta.SkippedShards.
func (c *Coordinator) QueryX(ctx context.Context, req endpoint.Request) (*sparql.Results, endpoint.QueryMeta, error) {
	meta := endpoint.QueryMeta{Source: "coordinator", Step: req.Opts.Step}
	start := time.Now()
	p, err := c.planFor(req.Query)
	if err != nil {
		meta.Wall = time.Since(start)
		return nil, meta, endpoint.MarkPermanent(err)
	}
	c.m.plan(p.kind)
	meta.Plan = p.kind.String()

	// Read the composed generation BEFORE executing: a mutation landing
	// mid-query then caches the answer under the pre-mutation token,
	// which the next lookup's newer token invalidates — never the
	// reverse (a fresh token on stale data).
	meta.Generation = c.Generation()

	// One view per query: everything below runs against this topology
	// generation even if a Reload lands mid-flight.
	v := c.currentView()

	parent := req.Opts.Span
	if parent == nil {
		parent = obs.SpanFrom(ctx)
	}
	span := parent.Start("scatter-gather")
	span.SetAttr("plan", p.kind.String())
	span.SetAttr("shards", fmt.Sprint(len(v.groups)))
	if req.Opts.Step != "" {
		span.SetAttr("step", req.Opts.Step)
	}
	defer span.End()
	if span != nil {
		ctx = obs.ContextWith(ctx, span)
	}

	var res *sparql.Results
	var calls []obs.ShardCall
	var skipped []int
	switch p.kind {
	case planColocated:
		res, calls, skipped, err = c.runColocated(ctx, v, p.query, req.Opts.Step)
	case planPartialAgg:
		res, calls, skipped, err = c.runPartialAgg(ctx, v, p.query, p.agg, req.Opts.Step)
	case planBoundJoin:
		res, calls, skipped, err = c.runBoundJoin(ctx, v, p.bound, req.Opts.Step)
	default:
		res, calls, skipped, err = c.runGather(ctx, v, p.query, req.Opts.Step)
	}
	meta.Shards = calls
	meta.Wall = time.Since(start)
	if res != nil {
		meta.Rows = res.Len()
	}
	meta.Incomplete = len(skipped) > 0
	meta.SkippedShards = skipped
	if meta.Incomplete {
		span.SetAttr("incomplete", "true")
		span.SetAttr("skipped_shards", fmt.Sprint(skipped))
	}
	return res, meta, err
}

// scatterText sends one query text to every shard of the view, each
// call going through the shard's replica set (failover + optional
// hedging). results[i] is shard i's answer; a nil slot is a shard
// skipped in degraded mode (it is then listed in skipped). In strict
// mode the first failure by shard index is returned; when every shard
// fails, the first failure is returned in either mode.
func (c *Coordinator) scatterText(ctx context.Context, v *view, query, step string) (results []*sparql.Results, calls []obs.ShardCall, skipped []int, err error) {
	scatterStart := time.Now()
	defer func() { c.m.phase("scatter", time.Since(scatterStart)) }()
	n := len(v.groups)
	results = make([]*sparql.Results, n)
	calls = make([]obs.ShardCall, n)
	errs := make([]error, n)
	span := obs.SpanFrom(ctx)
	_ = par.Do(c.workersFor(n), n, func(i int) error {
		g := v.groups[i]
		sp := span.Start(fmt.Sprintf("shard-%d", i))
		c.m.scatterStart()
		callStart := time.Now()
		out := g.query(ctx, endpoint.Request{
			Query: query,
			Opts:  endpoint.QueryOpts{Step: step, Span: sp},
		}, c.cfg.HedgeAfter)
		wall := time.Since(callStart)
		c.m.scatterEnd()
		g.shardCallMetrics(wall, out.err)
		calls[i] = out.shardCall(i, wall)
		if out.res != nil {
			sp.SetAttr("rows", fmt.Sprint(out.res.Len()))
		}
		sp.SetAttr("replica", fmt.Sprint(out.replica))
		if out.err != nil {
			sp.SetAttr("error", out.err.Error())
		}
		sp.End()
		results[i], errs[i] = out.res, out.err
		return nil
	})
	var firstErr error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			skipped = append(skipped, i)
			calls[i].Skipped = true
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", i, errs[i])
			}
		}
	}
	if len(skipped) == 0 {
		return results, calls, nil, nil
	}
	if !c.cfg.Degraded || len(skipped) == n {
		return nil, calls, nil, firstErr
	}
	c.m.degraded(len(skipped))
	return results, calls, skipped, nil
}

// runColocated executes the colocated plan: strip the solution
// modifiers (they only apply to the global result), scatter, union
// the rows, and canonically finalize.
func (c *Coordinator) runColocated(ctx context.Context, v *view, q *sparql.Query, step string) (*sparql.Results, []obs.ShardCall, []int, error) {
	if q.Ask {
		return c.runAsk(ctx, v, q, step)
	}
	shardQ := stripModifiers(q)
	results, calls, skipped, err := c.scatterText(ctx, v, shardQ.String(), step)
	if err != nil {
		return nil, calls, nil, err
	}
	mergeStart := time.Now()
	merged, err := unionResults(q, results)
	c.m.phase("merge", time.Since(mergeStart))
	if err != nil {
		return nil, calls, nil, err
	}
	finStart := time.Now()
	sparql.MergeFinalize(q, merged)
	c.m.phase("finalize", time.Since(finStart))
	return merged, calls, skipped, nil
}

// runAsk scatters a colocated ASK and ORs the shard booleans.
func (c *Coordinator) runAsk(ctx context.Context, v *view, q *sparql.Query, step string) (*sparql.Results, []obs.ShardCall, []int, error) {
	results, calls, skipped, err := c.scatterText(ctx, v, q.String(), step)
	if err != nil {
		return nil, calls, nil, err
	}
	res := &sparql.Results{IsAsk: true}
	for _, r := range results {
		if r != nil && r.Boolean {
			res.Boolean = true
			break
		}
	}
	return res, calls, skipped, nil
}

// runPartialAgg pushes partial aggregation to the shards and
// finalizes groups at the coordinator.
func (c *Coordinator) runPartialAgg(ctx context.Context, v *view, q *sparql.Query, plan *sparql.PartialAggPlan, step string) (*sparql.Results, []obs.ShardCall, []int, error) {
	results, calls, skipped, err := c.scatterText(ctx, v, plan.ShardQuery().String(), step)
	if err != nil {
		return nil, calls, nil, err
	}
	mergeStart := time.Now()
	merged, err := plan.Merge(results)
	c.m.phase("merge", time.Since(mergeStart))
	if err != nil {
		return nil, calls, nil, err
	}
	finStart := time.Now()
	sparql.MergeFinalize(q, merged)
	c.m.phase("finalize", time.Since(finStart))
	return merged, calls, skipped, nil
}

// stripModifiers copies q without ORDER BY / LIMIT / OFFSET: those
// apply to the merged global result only. DISTINCT is kept — per-shard
// dedup is idempotent under the coordinator's re-dedup and cuts
// transfer. ORDER BY and LIMIT are deliberately NOT pushed down: a
// shard-local top-k under the engine's stable sort may cut ties
// differently than the coordinator's canonical order, making the
// answer depend on the topology.
func stripModifiers(q *sparql.Query) *sparql.Query {
	s := *q
	s.OrderBy = nil
	s.Limit = -1
	s.Offset = 0
	return &s
}

package shard

import (
	"context"
	"strings"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/sparql"
)

// TestClassifyTaxonomy pins the full plan taxonomy: which query
// shapes take which plan class. Classification is a pure function of
// the query text — the plan cache depends on that.
func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		name  string
		query string
		want  planKind
	}{
		// Colocated: single-subject stars, modifiers included.
		{"single-pattern", `SELECT ?s ?v WHERE { ?s <http://t/value> ?v }`, planColocated},
		{"star", `SELECT ?s WHERE { ?s <http://t/a> ?x . ?s <http://t/b> ?y } ORDER BY ?s`, planColocated},
		{"star-union", `SELECT ?s WHERE { { ?s <http://t/a> <http://t/x> } UNION { ?s <http://t/b> <http://t/y> } }`, planColocated},
		{"star-optional", `SELECT ?s ?v WHERE { ?s <http://t/a> ?x . OPTIONAL { ?s <http://t/b> ?v } }`, planColocated},
		{"star-exists-same-subject", `SELECT ?s WHERE { ?s <http://t/a> ?x . FILTER EXISTS { ?s <http://t/b> ?y } }`, planColocated},

		// Partial aggregation: decomposable aggregates over one star.
		{"count-group", `SELECT ?r (COUNT(?v) AS ?n) WHERE { ?s <http://t/r> ?r . ?s <http://t/v> ?v } GROUP BY ?r`, planPartialAgg},
		{"global-sum", `SELECT (SUM(?v) AS ?t) WHERE { ?s <http://t/v> ?v }`, planPartialAgg},

		// Bound join: multi-star BGPs connected by shared variables,
		// optionally with filters, as SELECT or ASK.
		{"two-star-join", `SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c }`, planBoundJoin},
		{"three-star-chain", `SELECT ?a ?d WHERE { ?a <http://t/k> ?b . ?b <http://t/k> ?c . ?c <http://t/k> ?d }`, planBoundJoin},
		{"join-with-filter", `SELECT ?s WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c . FILTER(?c != ?s) }`, planBoundJoin},
		{"join-ask", `ASK { ?a <http://t/k> ?b . ?b <http://t/k> ?c }`, planBoundJoin},
		{"join-const-subject", `SELECT ?c WHERE { <http://t/s1> <http://t/region> ?r . ?r <http://t/partOf> ?c }`, planBoundJoin},

		// Gather: everything the bound join cannot prove decomposable.
		{"closure", `SELECT ?b WHERE { <http://t/p0> <http://t/knows>+ ?b }`, planGather},
		{"join-plus-closure", `SELECT ?s ?b WHERE { ?s <http://t/region> ?r . ?r <http://t/knows>+ ?b }`, planGather},
		{"subselect", `SELECT ?s ?v WHERE { { SELECT ?s WHERE { ?s <http://t/a> <http://t/x> } } ?s <http://t/v> ?v }`, planGather},
		{"not-exists-cross-subject", `SELECT ?s WHERE { ?s <http://t/a> ?r . FILTER NOT EXISTS { ?r <http://t/b> ?x } }`, planGather},
		{"exists-in-join", `SELECT ?s WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c . FILTER EXISTS { ?s <http://t/c> ?x } }`, planGather},
		{"cross-subject-agg", `SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } GROUP BY ?c`, planGather},
		{"cartesian", `SELECT ?a ?b WHERE { ?a <http://t/p> ?x . ?b <http://t/q> ?y }`, planGather},
		{"join-union", `SELECT ?s WHERE { { ?s <http://t/a> ?r . ?r <http://t/b> ?c } UNION { ?s <http://t/d> ?e } }`, planGather},
		{"join-optional", `SELECT ?s ?v WHERE { ?s <http://t/a> ?r . ?r <http://t/b> ?c . OPTIONAL { ?s <http://t/v> ?v } }`, planGather},
		{"values-only", `SELECT ?x WHERE { VALUES ?x { <http://t/a> <http://t/b> } }`, planGather},
		// CONSTRUCT never takes the bound join (graph merge, not rows):
		// a star stays colocated, a cross-subject join falls to gather.
		{"construct-star", `CONSTRUCT { ?s <http://t/p> ?o } WHERE { ?s <http://t/p> ?o }`, planColocated},
		{"construct-join", `CONSTRUCT { ?s <http://t/p> ?c } WHERE { ?s <http://t/p> ?r . ?r <http://t/q> ?c }`, planGather},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q, err := sparql.Parse(c.query)
			if err != nil {
				t.Fatal(err)
			}
			p := classify(q)
			if p.kind != c.want {
				t.Fatalf("classify(%s) = %s, want %s", c.query, p.kind, c.want)
			}
			switch p.kind {
			case planBoundJoin:
				if p.bound == nil {
					t.Fatal("bound_join plan missing BoundJoinPlan")
				}
			case planPartialAgg:
				if p.agg == nil {
					t.Fatal("partial_agg plan missing PartialAggPlan")
				}
			}
		})
	}
}

// TestPlanCacheLRU pins the cache mechanics: hits, misses, and
// least-recently-used eviction at capacity.
func TestPlanCacheLRU(t *testing.T) {
	pc := newPlanCache(2, nil)
	mk := func(text string) queryPlan {
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		return classify(q)
	}
	a := `SELECT ?s WHERE { ?s <http://t/a> ?x }`
	b := `SELECT ?s WHERE { ?s <http://t/b> ?x }`
	c := `SELECT ?s WHERE { ?s <http://t/c> ?x }`

	if _, ok := pc.get(a); ok {
		t.Fatal("empty cache reported a hit")
	}
	pc.put(a, mk(a))
	pc.put(b, mk(b))
	if _, ok := pc.get(a); !ok {
		t.Fatal("miss on cached entry")
	}
	// a was just touched, so inserting c at capacity evicts b.
	pc.put(c, mk(c))
	if pc.len() != 2 {
		t.Fatalf("cache has %d entries, want 2", pc.len())
	}
	if _, ok := pc.get(b); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := pc.get(a); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := pc.get(c); !ok {
		t.Fatal("newest entry c missing")
	}
	// Re-putting an existing key must not grow the cache.
	pc.put(a, mk(a))
	if pc.len() != 2 {
		t.Fatalf("cache grew to %d on re-put", pc.len())
	}

	// A nil cache (caching disabled) is a no-op, not a crash.
	var off *planCache
	if _, ok := off.get(a); ok {
		t.Fatal("nil cache reported a hit")
	}
	off.put(a, mk(a))
	if off.len() != 0 {
		t.Fatal("nil cache reported entries")
	}
}

// TestPlanCacheDisabled checks WithPlanCache(0) turns caching off at
// the coordinator level and queries still answer.
func TestPlanCacheDisabled(t *testing.T) {
	ts := determinismTriples()
	parts := Partitioner{N: 2}.Split(ts)
	backends := make([]endpoint.Client, 2)
	for i := range backends {
		backends[i] = endpoint.NewInProcess(storeFromTriples(t, parts[i]))
	}
	c, err := New(backends, WithoutResilience(), WithPlanCache(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.cache != nil {
		t.Fatal("WithPlanCache(0) left the cache on")
	}
	q := `SELECT ?s ?c WHERE { ?s <http://t/region> ?r . ?r <http://t/partOf> ?c } ORDER BY ?s`
	for i := 0; i < 2; i++ { // same text twice: both must re-plan fine
		if _, meta, err := c.QueryX(context.Background(), endpoint.Request{Query: q}); err != nil {
			t.Fatal(err)
		} else if meta.Plan != "bound_join" {
			t.Fatalf("plan = %q, want bound_join", meta.Plan)
		}
	}

	// Default (no option) keeps the cache on at the default size.
	on, err := New(backends, WithoutResilience())
	if err != nil {
		t.Fatal(err)
	}
	defer on.Close()
	if on.cache == nil {
		t.Fatal("default coordinator has no plan cache")
	}
}

// TestPlanCacheParseErrors checks malformed queries are not cached:
// they would occupy capacity without ever hitting.
func TestPlanCacheParseErrors(t *testing.T) {
	ts := determinismTriples()
	parts := Partitioner{N: 2}.Split(ts)
	backends := make([]endpoint.Client, 2)
	for i := range backends {
		backends[i] = endpoint.NewInProcess(storeFromTriples(t, parts[i]))
	}
	c, err := New(backends, WithoutResilience())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.QueryX(context.Background(), endpoint.Request{Query: `SELECT WHERE {`}); err == nil {
		t.Fatal("malformed query did not error")
	}
	if c.cache.len() != 0 {
		t.Fatalf("parse failure was cached (%d entries)", c.cache.len())
	}
}

// TestGatherFetchDedupe pins the fetch-spec subsumption fix: a
// closure pattern fetches its predicate's full relation, so a plain
// pattern on the same predicate must not trigger a second
// (subset) fetch.
func TestGatherFetchDedupe(t *testing.T) {
	specsOf := func(text string) []fetchSpec {
		q, err := sparql.Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		return collectFetchSpecs(q)
	}
	countPred := func(specs []fetchSpec, pred string) int {
		n := 0
		for _, s := range specs {
			if strings.Contains(s.query, pred) {
				n++
			}
		}
		return n
	}

	// Closure + narrower plain pattern on the same predicate: one fetch.
	specs := specsOf(`SELECT ?a ?b WHERE { ?a <http://t/knows>+ ?b . <http://t/p0> <http://t/knows> ?x }`)
	if got := countPred(specs, "http://t/knows"); got != 1 {
		t.Fatalf("closure + constant-subject pattern produced %d knows fetches, want 1", got)
	}
	// Closure + full-relation plain pattern: structural dedup already
	// collapses them (identical normalized query text).
	specs = specsOf(`SELECT ?a ?b WHERE { ?a <http://t/knows>+ ?b . ?x <http://t/knows> ?y }`)
	if got := countPred(specs, "http://t/knows"); got != 1 {
		t.Fatalf("closure + full-relation pattern produced %d knows fetches, want 1", got)
	}
	// Repeated-variable pattern is a subset of the relation too.
	specs = specsOf(`SELECT ?a ?b WHERE { ?a <http://t/knows>+ ?b . ?x <http://t/knows> ?x }`)
	if got := countPred(specs, "http://t/knows"); got != 1 {
		t.Fatalf("closure + self-loop pattern produced %d knows fetches, want 1", got)
	}
	// Different predicates keep their own fetches.
	specs = specsOf(`SELECT ?a ?b WHERE { ?a <http://t/knows>+ ?b . ?a <http://t/label> ?l }`)
	if len(specs) != 2 {
		t.Fatalf("distinct predicates produced %d fetches, want 2", len(specs))
	}
	// An unrestricted ?s ?p ?o fetch subsumes everything else.
	specs = specsOf(`SELECT ?s WHERE { ?s ?p ?o . ?s <http://t/label> ?l . FILTER NOT EXISTS { ?s <http://t/hidden> ?h } }`)
	if len(specs) != 1 {
		t.Fatalf("all-variable pattern left %d fetches, want 1", len(specs))
	}

	// Correctness backstop: dedup must not change answers. The closure
	// and the constant-subject pattern share <knows>.
	ts := determinismTriples()
	q := `SELECT ?a ?b ?x WHERE { ?a <http://t/knows>+ ?b . <http://t/p1> <http://t/knows> ?x } ORDER BY ?a ?b ?x`
	coord := newTopology(t, ts, 3, Config{})
	defer coord.Close()
	res, meta, err := coord.QueryX(context.Background(), endpoint.Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Plan != "gather" {
		t.Fatalf("plan = %q, want gather", meta.Plan)
	}
	single := endpoint.NewInProcess(storeFromTriples(t, ts))
	want, err := single.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := canonRowsOrdered(res), canonRowsOrdered(want); len(g) != len(w) {
		t.Fatalf("deduped gather returned %d rows, single node %d", len(g), len(w))
	} else {
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("row %d diverges: %q vs %q", i, g[i], w[i])
			}
		}
	}
}

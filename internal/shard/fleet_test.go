package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
)

// fleetReplica is one fake replica process: a /metrics endpoint over
// its own registry (the /sparql path is never exercised here — fleet
// collection is orthogonal to the query path).
func fleetReplica(t *testing.T, queries int64, latencies []float64) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("re2xolap_server_requests_total", "Requests.", obs.L("outcome", "ok")).Add(queries)
	h := reg.Histogram("re2xolap_sparql_query_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range latencies {
		h.Observe(v)
	}
	reg.GaugeFunc("re2xolap_store_triples", "Triples.", func() float64 { return float64(queries * 100) })
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func fleetCoordinator(t *testing.T, specs [][]string, cfg FleetConfig) *Coordinator {
	t.Helper()
	c, err := NewDynamic(Static{View: TopologyView{Groups: specs}}, HTTPDialer(),
		WithoutResilience(), WithRegistry(obs.NewRegistry()), WithFleet(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func fleetScrapeBody(t *testing.T, c *Coordinator) string {
	t.Helper()
	rec := httptest.NewRecorder()
	c.FleetHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/fleet", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics/fleet status = %d, body:\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type = %q", ct)
	}
	return rec.Body.String()
}

// TestFleetFederation: the merged view over a 2-shard × 2-replica
// topology is exactly the sum of the individual scrapes — counters and
// histogram buckets — with per-process gauges passed through under an
// instance label.
func TestFleetFederation(t *testing.T) {
	reps := []*httptest.Server{
		fleetReplica(t, 10, []float64{0.005, 0.05}),
		fleetReplica(t, 7, []float64{0.5}),
		fleetReplica(t, 3, nil),
		fleetReplica(t, 1, []float64{0.005, 5}),
	}
	c := fleetCoordinator(t, [][]string{
		{reps[0].URL + "/sparql", reps[1].URL + "/sparql"},
		{reps[2].URL + "/sparql", reps[3].URL + "/sparql"},
	}, FleetConfig{}) // on-demand mode

	body := fleetScrapeBody(t, c)
	snap, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatalf("fleet output does not parse: %v\n%s", err, body)
	}
	if v, ok := snap.Value("re2xolap_server_requests_total", obs.L("outcome", "ok")); !ok || v != 21 {
		t.Errorf("federated ok counter = %v ok=%v, want 21", v, ok)
	}
	h := snap.Family("re2xolap_sparql_query_seconds")
	if h == nil || len(h.Hists) != 1 {
		t.Fatalf("latency family = %+v\n%s", h, body)
	}
	// Buckets: 0.005 ×2 → le=0.01; 0.05 → le=0.1; 0.5 → le=1; 5 → +Inf.
	hh := h.Hists[0]
	if hh.Cum[0] != 2 || hh.Cum[1] != 3 || hh.Cum[2] != 4 || hh.Count != 5 {
		t.Errorf("federated buckets = %+v", hh)
	}
	// Quantiles recomputed over merged buckets.
	if _, ok := snap.Value("re2xolap_sparql_query_seconds_quantile", obs.L("quantile", "0.99")); !ok {
		t.Errorf("missing recomputed fleet quantile:\n%s", body)
	}
	// Per-process gauge passthrough, one series per instance.
	for i, want := range []float64{1000, 700, 300, 100} {
		inst := fmt.Sprintf("shard%d/replica%d", i/2, i%2)
		if v, ok := snap.Value("re2xolap_store_triples", obs.L("instance", inst)); !ok || v != want {
			t.Errorf("store_triples{instance=%q} = %v ok=%v, want %v", inst, v, ok, want)
		}
		if v, ok := snap.Value("re2xolap_fleet_instance_up", obs.L("instance", inst)); !ok || v != 1 {
			t.Errorf("instance_up{%s} = %v ok=%v, want 1", inst, v, ok)
		}
	}
	// Scrape accounting on the coordinator registry.
	if n := c.cfg.Registry.Counter("re2xolap_fleet_scrapes_total", "", obs.L("outcome", "ok")).Value(); n != 4 {
		t.Errorf("scrape ok counter = %d, want 4", n)
	}
}

// TestFleetStaleness: killing a replica flips its staleness marker,
// keeps its last-good counters in the totals, and never 5xxes the
// fleet endpoint.
func TestFleetStaleness(t *testing.T) {
	alive := fleetReplica(t, 5, nil)
	dying := fleetReplica(t, 8, nil)
	c := fleetCoordinator(t, [][]string{
		{alive.URL + "/sparql", dying.URL + "/sparql"},
	}, FleetConfig{})

	body := fleetScrapeBody(t, c)
	if !strings.Contains(body, `re2xolap_fleet_instance_up{instance="shard0/replica1"} 1`) {
		t.Fatalf("replica1 not up before kill:\n%s", body)
	}

	dying.Close()
	body = fleetScrapeBody(t, c) // must still be 200
	snap, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.Value("re2xolap_fleet_instance_up", obs.L("instance", "shard0/replica1")); v != 0 {
		t.Errorf("dead replica instance_up = %v, want 0:\n%s", v, body)
	}
	if v, _ := snap.Value("re2xolap_fleet_instance_up", obs.L("instance", "shard0/replica0")); v != 1 {
		t.Errorf("alive replica instance_up = %v, want 1", v)
	}
	// Last-good counters still contribute.
	if v, _ := snap.Value("re2xolap_server_requests_total", obs.L("outcome", "ok")); v != 13 {
		t.Errorf("federated counter after death = %v, want 13 (last-good retained)", v)
	}
	if v, ok := snap.Value("re2xolap_fleet_scrape_age_seconds", obs.L("instance", "shard0/replica1")); !ok || v < 0 {
		t.Errorf("scrape age = %v ok=%v, want >= 0", v, ok)
	}

	st := c.FleetStatus()
	if len(st) != 2 || st[1].Stale != true || st[0].Stale != false || st[1].Err == "" {
		t.Errorf("FleetStatus = %+v", st)
	}
}

// TestFleetDisabled: without WithFleet the handler 404s and the
// accessors return nil.
func TestFleetDisabled(t *testing.T) {
	srv := fleetReplica(t, 1, nil)
	c, err := NewDynamic(Static{View: TopologyView{Groups: [][]string{{srv.URL + "/sparql"}}}},
		HTTPDialer(), WithoutResilience())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := httptest.NewRecorder()
	c.FleetHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics/fleet", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("disabled fleet status = %d, want 404", rec.Code)
	}
	if c.FleetSnapshot(context.Background()) != nil || c.FleetStatus() != nil {
		t.Error("disabled fleet accessors not nil")
	}
}

// TestFleetNonScrapableSkipped: replicas with non-URL specs
// (in-process backends) are excluded from scraping but the endpoint
// still serves the scrapable remainder.
func TestFleetNonScrapableSkipped(t *testing.T) {
	srv := fleetReplica(t, 4, nil)
	dial := func(shard, replica int, spec string) (endpoint.Client, error) {
		if spec == "mem:0" {
			return downClient{}, nil
		}
		return HTTPDialer()(shard, replica, spec)
	}
	c, err := NewDynamic(
		Static{View: TopologyView{Groups: [][]string{{srv.URL + "/sparql", "mem:0"}}}},
		dial, WithoutResilience(), WithFleet(FleetConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	body := fleetScrapeBody(t, c)
	snap, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.Value("re2xolap_server_requests_total", obs.L("outcome", "ok")); !ok || v != 4 {
		t.Errorf("federated counter = %v ok=%v, want 4", v, ok)
	}
	if _, ok := snap.Value("re2xolap_fleet_instance_up", obs.L("instance", "shard0/replica1")); ok {
		t.Errorf("non-scrapable replica should not appear as an instance:\n%s", body)
	}
	st := c.FleetStatus()
	if len(st) != 2 || st[0].Scrapable != true || st[1].Scrapable != false {
		t.Errorf("FleetStatus = %+v", st)
	}
}

// TestFleetBackgroundMode: with an interval the loop collects without
// per-request sweeps, and Close stops it.
func TestFleetBackgroundMode(t *testing.T) {
	srv := fleetReplica(t, 9, nil)
	c := fleetCoordinator(t, [][]string{{srv.URL + "/sparql"}},
		FleetConfig{Interval: 10 * time.Millisecond})
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := c.FleetSnapshot(context.Background())
		if v, ok := snap.Value("re2xolap_server_requests_total", obs.L("outcome", "ok")); ok && v == 9 {
			break
		}
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			_ = snap.WriteProm(&buf)
			t.Fatalf("background sweep never landed:\n%s", buf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Close() // must stop the loop without hanging
}

func TestMetricsURL(t *testing.T) {
	for spec, want := range map[string]string{
		"http://h:1/sparql":          "http://h:1/metrics",
		"https://h/sparql?x=1#f":     "https://h/metrics",
		"http://h":                   "http://h/metrics",
		"local":                      "",
		"client:0/1":                 "",
		"unix:///tmp/sock":           "",
		"ftp://h/sparql":             "",
	} {
		got, ok := metricsURL(spec)
		if (want == "") == ok || got != want {
			t.Errorf("metricsURL(%q) = %q, %v; want %q", spec, got, ok, want)
		}
	}
}

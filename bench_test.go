package re2xolap

// Benchmarks regenerating the paper's evaluation (one per table/figure)
// plus the ablations called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// Figure/table mapping:
//   Fig 6c  → BenchmarkBootstrap*
//   Fig 7a  → BenchmarkReOLAP/size-*
//   Fig 8a  → BenchmarkQuery/{orig,dis1,dis2}
//   Fig 9a  → BenchmarkTopK, BenchmarkPercentile, BenchmarkSimilarity
//   Fig 10  → BenchmarkBaselineSPARQLByE
//   ablations → BenchmarkKeywordMatch/{fulltext,scan},
//               BenchmarkJoinOrdering/{greedy,syntactic},
//               BenchmarkDisaggregate/{virtualgraph,recrawl},
//               BenchmarkStoreMatch/{compacted,delta}

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"re2xolap/internal/baseline"
	"re2xolap/internal/bench"
	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/rdf"
	"re2xolap/internal/refine"
	"re2xolap/internal/sparql"
	"re2xolap/internal/store"
	"re2xolap/internal/vgraph"
)

// benchObservations is the observation scale for the benchmark
// datasets; the paper's claim that synthesis cost is independent of it
// is itself checked by BenchmarkReOLAPScale.
const benchObservations = 20000

var (
	benchOnce sync.Once
	benchDS   *bench.Dataset
	benchErr  error
)

func eurostatDS(b *testing.B) *bench.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = bench.Prepare(datagen.EurostatLike(benchObservations))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchDS
}

// BenchmarkBootstrap measures the Figure 6c bootstrap (virtual schema
// graph construction) per dataset at a small scale.
func BenchmarkBootstrap(b *testing.B) {
	for _, spec := range []datagen.Spec{
		datagen.EurostatLike(2000),
		datagen.ProductionLike(2000),
		datagen.DBpediaLike(2000),
	} {
		st, err := spec.BuildStore()
		if err != nil {
			b.Fatal(err)
		}
		c := endpoint.NewInProcess(st)
		b.Run(spec.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := vgraph.Bootstrap(context.Background(), c, spec.Config()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReOLAP measures Figure 7a: synthesis time by input size.
func BenchmarkReOLAP(b *testing.B) {
	d := eurostatDS(b)
	ctx := context.Background()
	inputs := d.SampleExamples(21, bench.Sizes, 5)
	for _, size := range bench.Sizes {
		b.Run(fmt.Sprintf("size-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := inputs[size][i%len(inputs[size])]
				if _, err := d.Engine.Synthesize(ctx, core.Keywords(ex...)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReOLAPScale verifies the paper's independence claim: the
// same synthesis workload at two observation scales with an identical
// schema.
func BenchmarkReOLAPScale(b *testing.B) {
	ctx := context.Background()
	for _, obs := range []int{5000, 40000} {
		d, err := bench.Prepare(datagen.EurostatLike(obs))
		if err != nil {
			b.Fatal(err)
		}
		inputs := d.SampleExamples(22, []int{2}, 5)
		b.Run(fmt.Sprintf("obs-%d", obs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := inputs[2][i%len(inputs[2])]
				if _, err := d.Engine.Synthesize(ctx, core.Keywords(ex...)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// workflowQueries builds the Orig / Dis.1 / Dis.2 query chain used by
// the Figure 8/9 benchmarks.
func workflowQueries(b *testing.B, d *bench.Dataset) [3]*core.OLAPQuery {
	b.Helper()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	var ex []string
	for ex == nil {
		ex, _ = d.SampleExample(rng, 2)
	}
	cands, err := d.Engine.Synthesize(ctx, core.Keywords(ex...))
	if err != nil || len(cands) == 0 {
		b.Fatalf("synthesis failed: %v (%d cands)", err, len(cands))
	}
	var chain [3]*core.OLAPQuery
	chain[0] = cands[0].Query
	for i := 1; i < 3; i++ {
		dis := refine.Disaggregate(d.Graph, chain[i-1])
		if len(dis) == 0 {
			b.Fatal("no disaggregation available")
		}
		chain[i] = dis[rng.Intn(len(dis))].Query
	}
	return chain
}

// BenchmarkQuery measures Figure 8a: executing the original and
// disaggregated queries.
func BenchmarkQuery(b *testing.B) {
	d := eurostatDS(b)
	chain := workflowQueries(b, d)
	ctx := context.Background()
	for i, name := range []string{"orig", "dis1", "dis2"} {
		q := chain[i]
		b.Run(name, func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := d.Engine.Execute(ctx, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// refinementInput executes the Dis.2 query once and returns its
// results for the Figure 9 benchmarks.
func refinementInput(b *testing.B, d *bench.Dataset) *core.ResultSet {
	b.Helper()
	chain := workflowQueries(b, d)
	rs, err := d.Engine.Execute(context.Background(), chain[2])
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// BenchmarkTopK measures the Figure 9a top-k refinement generation.
func BenchmarkTopK(b *testing.B) {
	rs := refinementInput(b, eurostatDS(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refine.TopK(rs)
	}
}

// BenchmarkPercentile measures the Figure 9a percentile refinement.
func BenchmarkPercentile(b *testing.B) {
	rs := refinementInput(b, eurostatDS(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refine.Percentile(rs)
	}
}

// BenchmarkSimilarity measures the Figure 9a similarity refinement.
func BenchmarkSimilarity(b *testing.B) {
	rs := refinementInput(b, eurostatDS(b))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refine.Similarity(rs, refine.DefaultSimilarK)
	}
}

// BenchmarkBaselineSPARQLByE measures the Figure 10 baseline.
func BenchmarkBaselineSPARQLByE(b *testing.B) {
	d := eurostatDS(b)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(24))
	var ex []string
	for ex == nil {
		ex, _ = d.SampleExample(rng, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.ReverseEngineer(ctx, d.Client, ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeywordMatch is the full-text-index ablation: keyword
// resolution with the inverted index versus a literal scan.
func BenchmarkKeywordMatch(b *testing.B) {
	d := eurostatDS(b)
	query := `SELECT DISTINCT ?m ?q ?lit WHERE { ?m ?q ?lit . FILTER (ISLITERAL(?lit)) FILTER (CONTAINS(LCASE(STR(?lit)), "country 17")) FILTER (ISIRI(?m)) }`
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fulltext", false}, {"scan", true}} {
		eng := sparql.NewEngine(d.Store)
		eng.DisableTextIndex = mode.disable
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryString(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinOrdering is the planner ablation: greedy
// selectivity-based join ordering versus syntactic order.
func BenchmarkJoinOrdering(b *testing.B) {
	d := eurostatDS(b)
	// Syntactically worst order: the unselective member pattern first.
	query := fmt.Sprintf(`SELECT ?cont (SUM(?v) AS ?s) WHERE {
		?m <%sinContinent> ?cont .
		?o <%scitizen> ?m .
		?o <%snumApplicants> ?v .
		?o a <%sObservation> .
	} GROUP BY ?cont`, d.Spec.NS, d.Spec.NS, d.Spec.NS, d.Spec.NS)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"greedy", false}, {"syntactic", true}} {
		eng := sparql.NewEngine(d.Store)
		eng.DisableJoinOrdering = mode.disable
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.QueryString(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDisaggregate is the virtual-graph ablation: enumerating
// drill-downs over the in-memory virtual graph versus re-crawling the
// store for the schema first (what a system without the virtual graph
// would pay on every refinement).
func BenchmarkDisaggregate(b *testing.B) {
	d := eurostatDS(b)
	chain := workflowQueries(b, d)
	b.Run("virtualgraph", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refine.Disaggregate(d.Graph, chain[0])
		}
	})
	b.Run("recrawl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := vgraph.Bootstrap(context.Background(), d.Client, d.Spec.Config())
			if err != nil {
				b.Fatal(err)
			}
			refine.Disaggregate(g, chain[0])
		}
	})
}

// BenchmarkStoreMatch is the delta-buffer ablation: point lookups on a
// fully compacted store versus one with a resident delta.
func BenchmarkStoreMatch(b *testing.B) {
	build := func(compact bool) (*store.Store, store.ID) {
		st := store.New()
		var ts []rdf.Triple
		for i := 0; i < 50000; i++ {
			ts = append(ts, rdf.NewTriple(
				rdf.NewIRI(fmt.Sprintf("http://b/s%d", i%5000)),
				rdf.NewIRI(fmt.Sprintf("http://b/p%d", i%10)),
				rdf.NewIRI(fmt.Sprintf("http://b/o%d", i)),
			))
		}
		if compact {
			if err := st.AddAll(ts); err != nil {
				b.Fatal(err)
			}
		} else {
			// Keep the last chunk in the delta.
			if err := st.AddAll(ts[:40000]); err != nil {
				b.Fatal(err)
			}
			for _, t := range ts[40000:] {
				if err := st.Add(t); err != nil {
					b.Fatal(err)
				}
			}
		}
		pid, _ := st.Dict().Lookup(rdf.NewIRI("http://b/p3"))
		return st, pid
	}
	for _, mode := range []struct {
		name    string
		compact bool
	}{{"compacted", true}, {"delta", false}} {
		st, pid := build(mode.compact)
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				st.Match(0, pid, 0, func(_, _, _ store.ID) bool {
					n++
					return true
				})
				if n == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
}

// BenchmarkSnapshot compares loading the same dataset from the binary
// snapshot versus re-parsing N-Triples.
func BenchmarkSnapshot(b *testing.B) {
	spec := datagen.EurostatLike(5000)
	st, err := spec.BuildStore()
	if err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := st.WriteSnapshot(&snap); err != nil {
		b.Fatal(err)
	}
	var nt bytes.Buffer
	if err := spec.Write(&nt); err != nil {
		b.Fatal(err)
	}
	b.Run("load-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := store.ReadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load-ntriples", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s2 := store.New()
			if _, err := s2.Load(bytes.NewReader(nt.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("write-snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := st.WriteSnapshot(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSPARQLParse measures parser throughput on a representative
// generated analytical query.
func BenchmarkSPARQLParse(b *testing.B) {
	d := eurostatDS(b)
	chain := workflowQueries(b, d)
	src := chain[2].ToSPARQL()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreLoad measures bulk N-Triples ingestion.
func BenchmarkStoreLoad(b *testing.B) {
	var nt bytes.Buffer
	if err := datagen.EurostatLike(5000).Write(&nt); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(nt.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := store.New()
		if _, err := st.Load(bytes.NewReader(nt.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndpointRoundTrip measures one aggregate query through the
// full HTTP protocol stack.
func BenchmarkEndpointRoundTrip(b *testing.B) {
	d := eurostatDS(b)
	srv := httptest.NewServer(endpoint.NewServer(d.Store))
	defer srv.Close()
	c := endpoint.NewHTTPClient(srv.URL)
	ctx := context.Background()
	query := fmt.Sprintf(`SELECT ?s (SUM(?v) AS ?t) WHERE { ?o <%ssex> ?s . ?o <%snumApplicants> ?v . } GROUP BY ?s`, d.Spec.NS, d.Spec.NS)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(ctx, query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchItemCache is the keyword-cache ablation: repeated
// resolution of the same example item with and without the LRU.
func BenchmarkMatchItemCache(b *testing.B) {
	d := eurostatDS(b)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	var ex []string
	for ex == nil {
		ex, _ = d.SampleExample(rng, 1)
	}
	item := core.NewKeyword(ex[0])
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cached", false}, {"uncached", true}} {
		d.Engine.DisableMatchCache = mode.disable
		d.Engine.InvalidateCache()
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.Engine.MatchItem(ctx, item); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	d.Engine.DisableMatchCache = false
}

package re2xolap_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"re2xolap"
)

// asylumKG is the paper's Figure 1 fragment as Turtle.
const asylumKG = `
@prefix ex: <http://asylum.example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:origin rdfs:label "Country of Origin" .
ex:dest rdfs:label "Country of Destination" .
ex:inContinent rdfs:label "In Continent" .
ex:numApplicants rdfs:label "Num Applicants" .
ex:de ex:inContinent ex:europe ; rdfs:label "Germany" .
ex:fr ex:inContinent ex:europe ; rdfs:label "France" .
ex:sy ex:inContinent ex:asia ; rdfs:label "Syria" .
ex:europe rdfs:label "Europe" .
ex:asia rdfs:label "Asia" .
ex:obs0 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:de ; ex:numApplicants 403 .
ex:obs1 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:fr ; ex:numApplicants 120 .
ex:obs2 a ex:Observation ; ex:origin ex:de ; ex:dest ex:fr ; ex:numApplicants 10 .
`

func buildExampleSystem() *re2xolap.System {
	st := re2xolap.NewStore()
	if _, err := st.Load(strings.NewReader(asylumKG)); err != nil {
		log.Fatal(err)
	}
	sys, err := re2xolap.Bootstrap(context.Background(), re2xolap.NewInProcessClient(st), re2xolap.Config{
		ObservationClass: "http://asylum.example.org/Observation",
	})
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

// Synthesizing analytical queries from a keyword example.
func ExampleSystem_Synthesize() {
	sys := buildExampleSystem()
	cands, err := sys.Synthesize(context.Background(), "Asia", "Germany")
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cands {
		fmt.Println(c.Query.Description)
	}
	// Output:
	// Return SUM/MIN/MAX/AVG(Num Applicants) grouped by "Country of Origin / In Continent" and "Country of Destination"
}

// Running a synthesized query and reading its aggregate results.
func ExampleSystem_Execute() {
	sys := buildExampleSystem()
	ctx := context.Background()
	cands, _ := sys.Synthesize(ctx, "Asia", "Germany")
	rs, err := sys.Execute(ctx, cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("groups:", rs.Len())
	fmt.Println("example present:", len(rs.ExampleTuples()) > 0)
	// Output:
	// groups: 3
	// example present: true
}

// An interactive session: disaggregation keeps the example in scope.
func ExampleSession() {
	sys := buildExampleSystem()
	ctx := context.Background()
	cands, _ := sys.Synthesize(ctx, "Germany")
	var q *re2xolap.OLAPQuery
	for _, c := range cands {
		if strings.Contains(c.Query.Description, "Destination") {
			q = c.Query
		}
	}
	sess := sys.NewSession()
	rs, err := sess.Start(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial groups:", rs.Len())
	opts, _ := sess.Options(ctx, re2xolap.Disaggregate)
	fmt.Println("disaggregations offered:", len(opts))
	// Output:
	// initial groups: 2
	// disaggregations offered: 2
}

// Contrasting two example sets (a Section 8 extension).
func ExampleSystem_Contrast() {
	sys := buildExampleSystem()
	cs, err := sys.Contrast(context.Background(),
		re2xolap.Keywords("Germany"), re2xolap.Keywords("France"))
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range cs {
		for _, row := range c.Rows {
			if strings.HasPrefix(row.Column, "sum_") {
				fmt.Printf("%s: %.0f vs %.0f\n", row.Column, row.A, row.B)
			}
		}
	}
	// Output:
	// sum_numApplicants: 403 vs 130
}

// DBpedia music: similarity search over the heterogeneous
// creative-works KG with M-to-N hierarchies (a song can carry several
// genres). Starting from one genre of interest, the user drills down
// by era and asks for the genres whose play-count profile across eras
// is most similar — the paper's "I want to see other countries with
// similar production" pattern, on its worst-case schema.
//
//	go run ./examples/dbpedia-music
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"re2xolap"
)

func main() {
	ctx := context.Background()
	spec := re2xolap.DBpediaLike(8000)
	// Shrink the artist dimension so the example runs in seconds while
	// keeping all 23 levels and the M-to-N structure.
	spec.Dimensions[0].Members = 2000
	st, err := spec.BuildStore()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := re2xolap.Bootstrap(ctx, re2xolap.NewInProcessClient(st), spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	stats := sys.Graph.Stats()
	fmt.Printf("bootstrapped dbpedia-like KG: %d dims, %d hierarchies, %d levels\n",
		stats.Dimensions, stats.Hierarchies, stats.Levels)

	cands, err := sys.Synthesize(ctx, "Genre 42")
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) == 0 {
		log.Fatal("no interpretation")
	}
	fmt.Printf("interpretations: %d\n", len(cands))
	for i, c := range cands {
		fmt.Printf("  [%d] %s\n", i, c.Query.Description)
	}

	sess := sys.NewSession()
	rs, err := sess.Start(ctx, cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial: %d genre groups\n", rs.Len())

	// Drill down by era so the similarity search has features.
	dis, err := sess.Options(ctx, re2xolap.Disaggregate)
	if err != nil {
		log.Fatal(err)
	}
	applied := false
	for _, r := range dis {
		if strings.Contains(r.Why, "In Era") && !strings.Contains(r.Why, "Group") {
			rs, err = sess.Apply(ctx, r)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("drilled down: %s → %d tuples\n", r.Why, rs.Len())
			applied = true
			break
		}
	}
	if !applied && len(dis) > 0 {
		rs, err = sess.Apply(ctx, dis[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("drilled down: %s → %d tuples\n", dis[0].Why, rs.Len())
	}

	sim, err := sess.Options(ctx, re2xolap.Similarity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimilarity refinements: %d\n", len(sim))
	if len(sim) == 0 {
		log.Fatal("no similarity refinement")
	}
	rs, err = sess.Apply(ctx, sim[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied: %s\n→ %d tuples over the similar genres\n", sim[0].Why, rs.Len())
	genres := map[string]bool{}
	for _, t := range rs.Tuples {
		genres[t.Dims[0].Value] = true
	}
	fmt.Printf("genres kept: %d (example retained: %v)\n", len(genres), len(rs.ExampleTuples()) > 0)
}

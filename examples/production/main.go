// Production: subset refinements on the macro-economic Production-like
// KG. An analyst starts from one industry of interest, inspects the
// aggregated amounts per industry sector, and uses the percentile and
// top-k dice refinements (Problem 2b) to focus on the interesting value
// ranges — the "max and min values within distinct groupings" need the
// paper's user study identified.
//
//	go run ./examples/production
package main

import (
	"context"
	"fmt"
	"log"

	"re2xolap"
)

func main() {
	ctx := context.Background()
	spec := re2xolap.ProductionLike(20000)
	st, err := spec.BuildStore()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := re2xolap.Bootstrap(ctx, re2xolap.NewInProcessClient(st), spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped: %s", sys.Graph)

	// The analyst knows one sector by name.
	cands, err := sys.Synthesize(ctx, "Group 12")
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) == 0 {
		log.Fatal("no interpretation")
	}
	fmt.Printf("\ninterpretations: %d; using: %s\n", len(cands), cands[0].Query.Description)

	sess := sys.NewSession()
	rs, err := sess.Start(ctx, cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial result: %d sector groups\n", rs.Len())

	// Percentile refinement: where does the example sector sit?
	perc, err := sess.Options(ctx, re2xolap.Percentile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npercentile refinements offered: %d\n", len(perc))
	for i, r := range perc {
		if i >= 6 {
			fmt.Printf("  ... and %d more\n", len(perc)-6)
			break
		}
		fmt.Printf("  [%d] %s\n", i, r.Why)
	}
	if len(perc) > 0 {
		rs, err = sess.Apply(ctx, perc[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("applied [0] → %d tuples (example still present: %v)\n",
			rs.Len(), len(rs.ExampleTuples()) > 0)
	}

	// Back up and take the top-k view instead.
	sess.Backtrack()
	topk, err := sess.Options(ctx, re2xolap.TopK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-k refinements offered: %d\n", len(topk))
	for i, r := range topk {
		if i >= 4 {
			break
		}
		fmt.Printf("  [%d] %s\n", i, r.Why)
	}
	if len(topk) > 0 {
		rs, err = sess.Apply(ctx, topk[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("applied [0] → %d tuples\n", rs.Len())
		var sumCol string
		for _, a := range rs.Query.Aggregates {
			if a.Func == "SUM" {
				sumCol = a.OutVar
			}
		}
		for _, t := range rs.Tuples {
			fmt.Printf("  %-60s SUM=%.0f\n", t.Dims[0].Value, t.Measures[sumCol])
		}
	}
}

// Asylum: the paper's running example end to end. Alex, a journalist,
// explores "Requests for Asylum" data (the Figure 1 KG, loaded from
// inline Turtle) without writing a single query: starting from the
// example ⟨"Asia", "Germany"⟩ they synthesize an aggregate query,
// drill down by year, find destinations with volumes similar to
// Germany, and finally keep only the top group.
//
//	go run ./examples/asylum
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"re2xolap"
)

// asylumTTL is a hand-written Figure-1-style statistical KG.
const asylumTTL = `
@prefix ex: <http://asylum.example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:origin rdfs:label "Country of Origin" .
ex:dest rdfs:label "Country of Destination" .
ex:inContinent rdfs:label "In Continent" .
ex:refPeriod rdfs:label "Reference Period" .
ex:inYear rdfs:label "In Year" .
ex:age rdfs:label "Age Range" .
ex:numApplicants rdfs:label "Num Applicants" .

ex:de ex:inContinent ex:europe ; rdfs:label "Germany" .
ex:fr ex:inContinent ex:europe ; rdfs:label "France" .
ex:se ex:inContinent ex:europe ; rdfs:label "Sweden" .
ex:at ex:inContinent ex:europe ; rdfs:label "Austria" .
ex:sy ex:inContinent ex:asia ; rdfs:label "Syria" .
ex:cn ex:inContinent ex:asia ; rdfs:label "China" .
ex:ng ex:inContinent ex:africa ; rdfs:label "Nigeria" .
ex:europe rdfs:label "Europe" .
ex:asia rdfs:label "Asia" .
ex:africa rdfs:label "Africa" .

ex:m2013-10 ex:inYear ex:y2013 ; rdfs:label "October 2013" .
ex:m2014-03 ex:inYear ex:y2014 ; rdfs:label "March 2014" .
ex:m2014-10 ex:inYear ex:y2014 ; rdfs:label "October 2014" .
ex:y2013 rdfs:label "2013" .
ex:y2014 rdfs:label "2014" .

ex:a18 rdfs:label "18-34" .
ex:a35 rdfs:label "35-64" .

ex:obs0 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:de ; ex:refPeriod ex:m2014-10 ; ex:age ex:a18 ; ex:numApplicants 403 .
ex:obs1 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:de ; ex:refPeriod ex:m2014-03 ; ex:age ex:a35 ; ex:numApplicants 350 .
ex:obs2 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:fr ; ex:refPeriod ex:m2014-10 ; ex:age ex:a18 ; ex:numApplicants 120 .
ex:obs3 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:se ; ex:refPeriod ex:m2014-03 ; ex:age ex:a18 ; ex:numApplicants 390 .
ex:obs4 a ex:Observation ; ex:origin ex:cn ; ex:dest ex:de ; ex:refPeriod ex:m2013-10 ; ex:age ex:a35 ; ex:numApplicants 60 .
ex:obs5 a ex:Observation ; ex:origin ex:cn ; ex:dest ex:fr ; ex:refPeriod ex:m2014-03 ; ex:age ex:a18 ; ex:numApplicants 85 .
ex:obs6 a ex:Observation ; ex:origin ex:ng ; ex:dest ex:at ; ex:refPeriod ex:m2014-10 ; ex:age ex:a18 ; ex:numApplicants 40 .
ex:obs7 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:de ; ex:refPeriod ex:m2013-10 ; ex:age ex:a18 ; ex:numApplicants 280 .
ex:obs8 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:se ; ex:refPeriod ex:m2014-10 ; ex:age ex:a35 ; ex:numApplicants 310 .
ex:obs9 a ex:Observation ; ex:origin ex:cn ; ex:dest ex:se ; ex:refPeriod ex:m2013-10 ; ex:age ex:a18 ; ex:numApplicants 75 .
ex:obs10 a ex:Observation ; ex:origin ex:ng ; ex:dest ex:fr ; ex:refPeriod ex:m2014-03 ; ex:age ex:a35 ; ex:numApplicants 55 .
ex:obs11 a ex:Observation ; ex:origin ex:sy ; ex:dest ex:at ; ex:refPeriod ex:m2014-03 ; ex:age ex:a18 ; ex:numApplicants 95 .
`

func main() {
	ctx := context.Background()
	st := re2xolap.NewStore()
	if _, err := st.Load(strings.NewReader(asylumTTL)); err != nil {
		log.Fatal(err)
	}
	sys, err := re2xolap.Bootstrap(ctx, re2xolap.NewInProcessClient(st), re2xolap.Config{
		ObservationClass: "http://asylum.example.org/Observation",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — Alex provides entities of interest, no query.
	fmt.Println("Alex asks about: ⟨\"Asia\", \"Germany\"⟩")
	cands, err := sys.Synthesize(ctx, "Asia", "Germany")
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range cands {
		fmt.Printf("  [%d] %s\n", i, c.Query.Description)
	}

	// Pick the interpretation with Germany as destination.
	var chosen *re2xolap.OLAPQuery
	for _, c := range cands {
		if strings.Contains(c.Query.Description, "Destination") {
			chosen = c.Query
			break
		}
	}
	if chosen == nil {
		chosen = cands[0].Query
	}
	sess := sys.NewSession()
	rs, err := sess.Start(ctx, chosen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStep 1 results (%d tuples):\n", rs.Len())
	printTuples(rs)

	// Step 2 — drill down by year.
	dis, err := sess.Options(ctx, re2xolap.Disaggregate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStep 2 — Disaggregate options: %d\n", len(dis))
	for _, r := range dis {
		if strings.Contains(r.Why, "In Year") {
			rs, err = sess.Apply(ctx, r)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("applied: %s → %d tuples\n", r.Why, rs.Len())
			break
		}
	}
	printTuples(rs)

	// Step 3 — destinations with volumes similar to Germany.
	sim, err := sess.Options(ctx, re2xolap.Similarity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStep 3 — Similarity options: %d\n", len(sim))
	if len(sim) > 0 {
		rs, err = sess.Apply(ctx, sim[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("applied: %s → %d tuples\n", sim[0].Why, rs.Len())
		printTuples(rs)
	}

	// Step 4 — keep the top group only.
	topk, err := sess.Options(ctx, re2xolap.TopK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStep 4 — TopK options: %d\n", len(topk))
	if len(topk) > 0 {
		rs, err = sess.Apply(ctx, topk[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("applied: %s → %d tuples\n", topk[0].Why, rs.Len())
		printTuples(rs)
	}

	fmt.Printf("\nexploration depth: %d steps; final query:\n%s\n", sess.Depth(), sess.Current().Query.ToSPARQL())
}

func printTuples(rs *re2xolap.ResultSet) {
	var sumCol string
	for _, a := range rs.Query.Aggregates {
		if a.Func == "SUM" {
			sumCol = a.OutVar
		}
	}
	for _, t := range rs.Tuples {
		for _, d := range t.Dims {
			fmt.Printf("  %-14s", short(d.Value))
		}
		fmt.Printf("  SUM=%.0f\n", t.Measures[sumCol])
	}
}

func short(v string) string {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}

// Endpoint: the paper's deployment architecture — the RE2xOLAP server
// and the triplestore are separate processes speaking the SPARQL 1.1
// protocol. This example starts an HTTP SPARQL endpoint in-process,
// then bootstraps and explores through it exactly as cmd/re2xolap
// would against cmd/sparqld (or Virtuoso, Fuseki, ...).
//
//	go run ./examples/endpoint
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"re2xolap"
)

func main() {
	ctx := context.Background()

	// The "triplestore" side: a store served over HTTP.
	spec := re2xolap.EurostatLike(3000)
	st, err := spec.BuildStore()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: re2xolap.NewSPARQLServer(st), WriteTimeout: time.Minute}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Println("SPARQL endpoint listening on", url)

	// The RE2xOLAP side: everything goes through the protocol.
	client := re2xolap.NewHTTPClient(url)
	t0 := time.Now()
	sys, err := re2xolap.Bootstrap(ctx, client, spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped over HTTP in %s: %d levels\n",
		time.Since(t0).Round(time.Millisecond), sys.Graph.Stats().Levels)

	cands, err := sys.Synthesize(ctx, "Country 9", "Continent 2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpretations over HTTP: %d\n", len(cands))
	for i, c := range cands {
		fmt.Printf("  [%d] %s\n", i, c.Query.Description)
	}
	if len(cands) == 0 {
		return
	}
	rs, err := sys.Execute(ctx, cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed over HTTP: %d tuples, example present: %v\n",
		rs.Len(), len(rs.ExampleTuples()) > 0)
}

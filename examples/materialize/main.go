// Materialize: Section 3 of the paper notes that "it is straightforward
// to obtain a statistical KG by creating a (materialized) view over an
// existing KG". This example starts from a *raw* event-log KG that is
// not cube-shaped, materializes an observation view with a SPARQL
// CONSTRUCT query, loads the view into a fresh store, and explores it
// with RE2xOLAP.
//
//	go run ./examples/materialize
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"re2xolap"
	"re2xolap/internal/sparql"
)

// rawKG is an ordinary (non-statistical) KG: purchase events connected
// to customers and products, amounts attached to the events.
const rawKG = `
@prefix shop: <http://shop.example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

shop:inCategory rdfs:label "In Category" .
shop:byCustomer rdfs:label "Customer" .
shop:ofProduct rdfs:label "Product" .
shop:fromCity rdfs:label "From City" .
shop:amount rdfs:label "Amount" .

shop:alice shop:fromCity shop:berlin ; rdfs:label "Alice" .
shop:bob shop:fromCity shop:paris ; rdfs:label "Bob" .
shop:carol shop:fromCity shop:berlin ; rdfs:label "Carol" .
shop:berlin rdfs:label "Berlin" .
shop:paris rdfs:label "Paris" .

shop:tea shop:inCategory shop:drinks ; rdfs:label "Tea" .
shop:coffee shop:inCategory shop:drinks ; rdfs:label "Coffee" .
shop:bread shop:inCategory shop:food ; rdfs:label "Bread" .
shop:drinks rdfs:label "Drinks" .
shop:food rdfs:label "Food" .

shop:e1 a shop:Purchase ; shop:who shop:alice ; shop:what shop:tea ; shop:paid 12 .
shop:e2 a shop:Purchase ; shop:who shop:alice ; shop:what shop:bread ; shop:paid 4 .
shop:e3 a shop:Purchase ; shop:who shop:bob ; shop:what shop:coffee ; shop:paid 9 .
shop:e4 a shop:Purchase ; shop:who shop:carol ; shop:what shop:tea ; shop:paid 15 .
shop:e5 a shop:Purchase ; shop:who shop:bob ; shop:what shop:bread ; shop:paid 5 .
shop:e6 a shop:Purchase ; shop:who shop:carol ; shop:what shop:coffee ; shop:paid 7 .
`

// viewQuery reshapes purchase events into qb-style observations: each
// event becomes an observation with customer and product dimensions
// and the amount as measure. The dimension members keep their original
// hierarchy links (city, category), which the CONSTRUCT also copies.
const viewQuery = `
PREFIX shop: <http://shop.example.org/>
PREFIX view: <http://view.example.org/>
CONSTRUCT {
	?e a view:Observation .
	?e view:byCustomer ?cust .
	?e view:ofProduct ?prod .
	?e view:amount ?amt .
	?cust view:fromCity ?city .
	?prod view:inCategory ?cat .
} WHERE {
	?e a shop:Purchase .
	?e shop:who ?cust .
	?e shop:what ?prod .
	?e shop:paid ?amt .
	?cust shop:fromCity ?city .
	?prod shop:inCategory ?cat .
}`

func main() {
	ctx := context.Background()

	// 1. Load the raw KG.
	raw := re2xolap.NewStore()
	if _, err := raw.Load(strings.NewReader(rawKG)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw KG: %d triples (event log, not cube-shaped)\n", raw.Len())

	// 2. Materialize the statistical view with CONSTRUCT.
	res, err := sparql.NewEngine(raw).QueryString(viewQuery)
	if err != nil {
		log.Fatal(err)
	}
	view := re2xolap.NewStore()
	if err := view.AddAll(res.Triples); err != nil {
		log.Fatal(err)
	}
	// Labels ride along so keyword matching works on the view.
	for _, t := range raw.Triples() {
		if t.P.Value == "http://www.w3.org/2000/01/rdf-schema#label" {
			_ = view.Add(t)
		}
	}
	fmt.Printf("materialized view: %d triples\n", view.Len())

	// 3. Bootstrap RE2xOLAP over the view and explore.
	sys, err := re2xolap.Bootstrap(ctx, re2xolap.NewInProcessClient(view), re2xolap.Config{
		ObservationClass: "http://view.example.org/Observation",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Graph.String())

	cands, err := sys.Synthesize(ctx, "Berlin")
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) == 0 {
		log.Fatal("no interpretation")
	}
	fmt.Printf("\nexample ⟨\"Berlin\"⟩ → %s\n", cands[0].Query.Description)
	rs, err := sys.Execute(ctx, cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	var sumCol string
	for _, a := range rs.Query.Aggregates {
		if a.Func == "SUM" {
			sumCol = a.OutVar
		}
	}
	for _, t := range rs.Tuples {
		fmt.Printf("  %-40s SUM=%.0f\n", t.Dims[0].Value, t.Measures[sumCol])
	}
}

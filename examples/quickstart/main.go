// Quickstart: generate a small statistical KG, bootstrap RE2xOLAP,
// reverse-engineer analytical queries from a two-keyword example, and
// print the Table-2-style result of the first interpretation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"re2xolap"
)

func main() {
	ctx := context.Background()

	// 1. A statistical KG. Here we generate the Eurostat-like dataset;
	//    load your own triples with store.Load instead.
	spec := re2xolap.EurostatLike(5000)
	st, err := spec.BuildStore()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Bootstrap: crawl the endpoint once, building the virtual
	//    schema graph (the paper's offline phase).
	sys, err := re2xolap.Bootstrap(ctx, re2xolap.NewInProcessClient(st), spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sys.Graph.String())

	// 3. Query synthesis from examples — no SPARQL written by the user.
	//    The generated members are labeled "<Level Label> <n>".
	cands, err := sys.Synthesize(ctx, "Country 5", "Period 3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d candidate interpretations:\n", len(cands))
	for i, c := range cands {
		fmt.Printf("  [%d] %s\n", i, c.Query.Description)
	}
	if len(cands) == 0 {
		log.Fatal("no interpretation found")
	}

	// 4. Execute the chosen interpretation.
	q := cands[0].Query
	fmt.Println("\nSPARQL:\n" + q.ToSPARQL())
	rs, err := sys.Execute(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	var sumCol string
	for _, a := range q.Aggregates {
		if a.Func == "SUM" {
			sumCol = a.OutVar
		}
	}
	fmt.Printf("\n%d result tuples (first 10):\n", rs.Len())
	for i, t := range rs.Tuples {
		if i >= 10 {
			break
		}
		for _, d := range t.Dims {
			fmt.Printf("%-50s ", d.Value)
		}
		fmt.Printf("SUM=%.0f\n", t.Measures[sumCol])
	}
	fmt.Printf("\ntuples matching the example: %d\n", len(rs.ExampleTuples()))
}

// Federation: partition a statistical KG across in-process shards,
// stand up a scatter-gather coordinator with the options API, and run
// the full example-driven synthesis stack over the federation. Swap
// ShardClients for ShardURLs to federate remote sparqld processes —
// nothing above the coordinator changes.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"re2xolap"
)

func main() {
	ctx := context.Background()

	// 1. Build the dataset and split it by subject hash: every triple
	//    of a subject lands on the same shard, which is the colocation
	//    contract all coordinator plans rely on.
	spec := re2xolap.EurostatLike(5000)
	st, err := spec.BuildStore()
	if err != nil {
		log.Fatal(err)
	}
	const shards = 3
	parts := re2xolap.ShardPartitioner{N: shards}.Split(st.Triples())
	groups := make([][]re2xolap.Client, shards)
	for i, ts := range parts {
		s := re2xolap.NewStore()
		if err := s.AddAll(ts); err != nil {
			log.Fatal(err)
		}
		s.Compact()
		groups[i] = []re2xolap.Client{re2xolap.NewInProcessClient(s)}
		fmt.Printf("shard %d: %d triples\n", i, s.Len())
	}

	// 2. The coordinator, configured with options: degraded mode keeps
	//    answering (marked Incomplete) if a shard dies, hedging caps
	//    tail latency, and the plan cache memoizes parse + classify +
	//    rewrite per query text.
	reg := re2xolap.NewRegistry()
	coord, err := re2xolap.NewCoordinatorClient(
		re2xolap.ShardClients(groups...),
		re2xolap.WithDegraded(true),
		re2xolap.WithHedge(250*time.Millisecond),
		re2xolap.WithPlanCache(256),
		re2xolap.WithShardRegistry(reg),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	// 3. The coordinator is a Client: the synthesis stack runs on it
	//    unchanged, and results are byte-identical to a single node.
	sys, err := re2xolap.Bootstrap(ctx, coord, spec.Config())
	if err != nil {
		log.Fatal(err)
	}
	cands, err := sys.Synthesize(ctx, "Country 5", "Period 3")
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) == 0 {
		log.Fatal("no interpretation found")
	}
	fmt.Printf("\n%d candidate interpretations; executing [0] %s\n",
		len(cands), cands[0].Query.Description)
	rs, err := sys.Execute(ctx, cands[0].Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated result: %d tuples\n", rs.Len())

	// 4. Per-query federation metadata: the plan class each query took
	//    and the per-shard accounting.
	q := cands[0].Query.ToSPARQL()
	_, meta, err := re2xolap.QueryX(ctx, coord, re2xolap.Request{Query: q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan class: %s\n", meta.Plan)
	for _, call := range meta.Shards {
		fmt.Printf("  shard %d: %d rows in %.2fms (attempts=%d)\n",
			call.Shard, call.Rows, call.WallMS, call.Attempts)
	}
}

module re2xolap

go 1.22

package re2xolap

import (
	"context"
	"testing"
)

// TestIntegrationAllPresets runs the complete pipeline — generate,
// bootstrap, synthesize, execute, and every refinement method — on all
// three paper datasets at a small scale. It is the cross-dataset
// regression net for the experiment harness.
func TestIntegrationAllPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	specs := []DatasetSpec{
		EurostatLike(1500),
		ProductionLike(1500),
		DBpediaLike(1500),
	}
	// Shrink DBpedia's artist dimension for test speed while keeping
	// all 23 levels.
	specs[2].Dimensions[0].Members = 1500

	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ctx := context.Background()
			st, err := spec.BuildStore()
			if err != nil {
				t.Fatal(err)
			}
			sys, err := Bootstrap(ctx, NewInProcessClient(st), spec.Config())
			if err != nil {
				t.Fatal(err)
			}
			stats := sys.Graph.Stats()
			if stats.Dimensions != len(spec.Dimensions) {
				t.Errorf("dimensions = %d, want %d", stats.Dimensions, len(spec.Dimensions))
			}
			if stats.Levels != spec.LevelTotal() {
				t.Errorf("levels = %d, want %d", stats.Levels, spec.LevelTotal())
			}

			// Sample a real base-level member label via a SPARQL query.
			res, err := sys.Client.Query(ctx, `SELECT ?l WHERE { ?o a <`+spec.ObservationClass()+`> . ?o <`+spec.NS+spec.Dimensions[0].Pred+`> ?m . ?m <http://www.w3.org/2000/01/rdf-schema#label> ?l . } LIMIT 1`)
			if err != nil || res.Len() == 0 {
				t.Fatalf("sampling label: %v (%d rows)", err, res.Len())
			}
			keyword := res.Rows[0][0].Value

			cands, err := sys.Synthesize(ctx, keyword)
			if err != nil {
				t.Fatal(err)
			}
			if len(cands) == 0 {
				t.Fatalf("no candidates for %q", keyword)
			}
			sess := sys.NewSession()
			rs, err := sess.Start(ctx, cands[0].Query)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Len() == 0 || len(rs.ExampleTuples()) == 0 {
				t.Fatalf("initial results = %d (example hits %d)", rs.Len(), len(rs.ExampleTuples()))
			}
			// One disaggregation, then every subset refinement method.
			dis, err := sess.Options(ctx, Disaggregate)
			if err != nil || len(dis) == 0 {
				t.Fatalf("disaggregate: %v (%d)", err, len(dis))
			}
			if _, err := sess.Apply(ctx, dis[0]); err != nil {
				t.Fatal(err)
			}
			for _, kind := range []RefinementKind{TopK, Percentile, Similarity, Cluster} {
				opts, err := sess.Options(ctx, kind)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				if len(opts) == 0 {
					continue
				}
				rs2, err := sys.Execute(ctx, opts[0].Query)
				if err != nil {
					t.Fatalf("%s execute: %v", kind, err)
				}
				if len(rs2.ExampleTuples()) == 0 {
					t.Errorf("%s refinement lost the example", kind)
				}
			}
		})
	}
}

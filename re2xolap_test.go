package re2xolap

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildSystem generates a small Eurostat-like dataset and bootstraps a
// System over an in-process client.
func buildSystem(t testing.TB) *System {
	t.Helper()
	spec := EurostatLike(500)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Bootstrap(context.Background(), NewInProcessClient(st), spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEndToEndSynthesizeAndRefine(t *testing.T) {
	sys := buildSystem(t)
	ctx := context.Background()

	// Pick a real member label to use as keyword.
	cands, err := sys.Synthesize(ctx, "Country 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	sess := sys.NewSession()
	rs, err := sess.Start(ctx, cands[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("empty initial results")
	}
	if len(rs.ExampleTuples()) == 0 {
		t.Fatal("example not in initial results")
	}

	dis, err := sess.Options(ctx, Disaggregate)
	if err != nil {
		t.Fatal(err)
	}
	if len(dis) == 0 {
		t.Fatal("no disaggregations")
	}
	rs2, err := sess.Apply(ctx, dis[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rs2.ExampleTuples()) == 0 {
		t.Error("example lost after disaggregate")
	}

	for _, kind := range []RefinementKind{TopK, Percentile, Similarity} {
		opts, err := sess.Options(ctx, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, r := range opts {
			rs3, err := sys.Execute(ctx, r.Query)
			if err != nil {
				t.Fatalf("%s refinement failed: %v\n%s", kind, err, r.Query.ToSPARQL())
			}
			if len(rs3.ExampleTuples()) == 0 {
				t.Errorf("%s refinement lost the example: %s", kind, r.Why)
			}
		}
	}
}

func TestEndToEndOverHTTP(t *testing.T) {
	// The paper's deployment: the RE2xOLAP server talks to a separate
	// triplestore over the SPARQL protocol.
	spec := EurostatLike(300)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewSPARQLServer(st))
	defer srv.Close()

	ctx := context.Background()
	sys, err := Bootstrap(ctx, NewHTTPClient(srv.URL), spec.Config())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Graph.Stats().Levels != 9 {
		t.Errorf("levels over HTTP = %d, want 9", sys.Graph.Stats().Levels)
	}
	cands, err := sys.Synthesize(ctx, "Period 103")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates over HTTP")
	}
	rs, err := sys.Execute(ctx, cands[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Error("empty results over HTTP")
	}
}

func TestBaselineComparison(t *testing.T) {
	// Figure 10: the baseline yields a flat entity query; ReOLAP yields
	// an aggregate over observations.
	sys := buildSystem(t)
	ctx := context.Background()
	base, err := sys.BaselineReverseEngineer(ctx, []string{"Continent 3"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(base.Query, "GROUP BY") {
		t.Error("baseline produced GROUP BY")
	}
	cands, err := sys.Synthesize(ctx, "Continent 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("ReOLAP found nothing")
	}
	if !strings.Contains(cands[0].Query.ToSPARQL(), "GROUP BY") {
		t.Error("ReOLAP query lacks GROUP BY")
	}
}

func TestSynthesizeTupleWithIRI(t *testing.T) {
	sys := buildSystem(t)
	ctx := context.Background()
	iri := sys.Graph.BaseLevels()[0].Dimension // a predicate, not a member: expect no match
	_ = iri
	tuple := ExampleTuple{MemberIRI("http://data.example.org/eurostat/citizen/m5")}
	cands, err := sys.SynthesizeTuple(ctx, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("direct IRI example found nothing")
	}
}

func TestPublicWrappers(t *testing.T) {
	sys := buildSystem(t)
	ctx := context.Background()

	// Profile.
	p, err := sys.Profile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Observations != 500 || len(p.Measures) != 1 {
		t.Errorf("profile = %+v", p)
	}

	// Refresh after no change is a no-op that succeeds.
	before := sys.Graph.ObservationCount
	if err := sys.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if sys.Graph.ObservationCount != before {
		t.Errorf("refresh changed count: %d → %d", before, sys.Graph.ObservationCount)
	}

	// Negative-example synthesis via the wrapper.
	cands, err := sys.SynthesizeWithNegatives(ctx,
		[]ExampleTuple{Keywords("Country 7")}, []ExampleTuple{Keywords("atlantis")})
	if err != nil || len(cands) == 0 {
		t.Fatalf("negatives wrapper: %v (%d)", err, len(cands))
	}

	// Contrast via the wrapper.
	cs, err := sys.Contrast(ctx, Keywords("Country 7"), Keywords("Country 8"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 {
		t.Error("no contrasts")
	}

	// Ranking via the wrapper.
	sess := sys.NewSession()
	rs, err := sess.Start(ctx, cands[0].Query)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := sess.Options(ctx, Percentile)
	if err != nil {
		t.Fatal(err)
	}
	scored := RankRefinements(rs, opts)
	if len(scored) != len(opts) {
		t.Errorf("ranked = %d, want %d", len(scored), len(opts))
	}

	// Cluster refinement through the session.
	if _, err := sess.Options(ctx, Cluster); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWrappers(t *testing.T) {
	spec := EurostatLike(100)
	st, err := spec.BuildStore()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(st, &buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Errorf("snapshot round trip: %d vs %d", st2.Len(), st.Len())
	}
}

func TestSynthesizeTuplesWrapper(t *testing.T) {
	sys := buildSystem(t)
	cands, err := sys.SynthesizeTuples(context.Background(), []ExampleTuple{
		Keywords("Country 7"), Keywords("Country 8"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Error("multi-tuple synthesis found nothing")
	}
}

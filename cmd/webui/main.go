// Command webui serves the browser interface for example-driven
// exploration:
//
//	webui -addr :8086 -gen eurostat -obs 20000
//	webui -addr :8086 -data dataset.nt -class http://purl.org/linked-data/cube#Observation
//	webui -addr :8086 -endpoint http://localhost:8085/sparql -class http://...#Observation
//
// Then open http://localhost:8086/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/qb"
	"re2xolap/internal/store"
	"re2xolap/internal/vgraph"
	"re2xolap/internal/webui"

	"os"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	endpointURL := flag.String("endpoint", "", "remote SPARQL endpoint URL")
	data := flag.String("data", "", "local N-Triples/Turtle file (.snap loads a binary snapshot)")
	gen := flag.String("gen", "", "generate a preset dataset: eurostat, production, dbpedia")
	obs := flag.Int("obs", 10000, "observations for -gen")
	class := flag.String("class", qb.Observation, "observation class IRI")
	flag.Parse()

	client, cfg, err := buildClient(*endpointURL, *data, *gen, *obs, *class)
	if err != nil {
		log.Fatalf("webui: %v", err)
	}
	log.Println("webui: bootstrapping virtual schema graph...")
	g, err := vgraph.Bootstrap(context.Background(), client, cfg)
	if err != nil {
		log.Fatalf("webui: bootstrap: %v", err)
	}
	stats := g.Stats()
	log.Printf("webui: ready (%d dimensions, %d levels, %d members); listening on %s",
		stats.Dimensions, stats.Levels, stats.Members, *addr)
	engine := core.NewEngine(client, g, cfg)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      webui.New(engine, g),
		ReadTimeout:  time.Minute,
		WriteTimeout: 15 * time.Minute,
	}
	log.Fatal(srv.ListenAndServe())
}

func buildClient(endpointURL, data, gen string, obs int, class string) (endpoint.Client, qb.Config, error) {
	cfg := qb.Config{ObservationClass: class}
	switch {
	case endpointURL != "":
		return endpoint.NewHTTPClient(endpointURL), cfg, nil
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, cfg, err
		}
		defer f.Close()
		if len(data) > 5 && data[len(data)-5:] == ".snap" {
			st, err := store.ReadSnapshot(f)
			if err != nil {
				return nil, cfg, err
			}
			return endpoint.NewInProcess(st), cfg, nil
		}
		st := store.New()
		if _, err := st.Load(f); err != nil {
			return nil, cfg, err
		}
		return endpoint.NewInProcess(st), cfg, nil
	case gen != "":
		var spec datagen.Spec
		switch gen {
		case "eurostat":
			spec = datagen.EurostatLike(obs)
		case "production":
			spec = datagen.ProductionLike(obs)
		case "dbpedia":
			spec = datagen.DBpediaLike(obs)
		default:
			return nil, cfg, fmt.Errorf("unknown preset %q", gen)
		}
		st, err := spec.BuildStore()
		if err != nil {
			return nil, cfg, err
		}
		return endpoint.NewInProcess(st), spec.Config(), nil
	default:
		return nil, cfg, fmt.Errorf("one of -endpoint, -data, or -gen is required")
	}
}

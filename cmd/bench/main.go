// Command bench runs one of the repo's macro-benchmarks and writes a
// machine-readable report:
//
//	bench -report parallel -scale medium -workers 0 -runs 3 -out BENCH_PR2.json
//	bench -report scatter  -scale medium -shards 2,4 -out BENCH_PR8.json
//	bench -report scatter  -max-overhead 'bound_join=2,gather=2' -out -
//	bench -report serve    -scale small -load-workers 4,16 -overlap 0.75 -out BENCH_PR9.json
//	bench -report serve    -min-warm-speedup 2 -max-p99-ratio 10 -out -
//
// The parallel report measures the sequential-vs-parallel executor on
// the three workloads the worker pool targets (BGP join, GROUP BY,
// end-to-end synthesis). The scatter report measures the sharded
// coordinator against a single node on one workload per scatter-gather
// plan class (colocated star, partial-aggregation pushdown, bound
// join, gather fallback). Both embed GOMAXPROCS so readers can tell a
// one-core run from a multicore one.
//
// -max-overhead turns the scatter report into a regression gate:
// ceilings on the scatter/single wall-time ratio keyed by workload
// name or plan class (name wins), checked after the run. CI uses it
// to fail the build when a plan class slides back toward the gather
// cliff.
//
// The serve report load-tests the serving stack (internal/serve):
// closed-loop clients replay recorded exploration sessions against
// cached and uncached configurations across topologies, then an
// open-loop phase offers twice the measured saturation throughput
// with admission control on. -min-warm-speedup and -max-p99-ratio
// turn it into a regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"re2xolap/internal/bench"
)

func main() {
	report := flag.String("report", "parallel", "benchmark to run: parallel, scatter, or serve")
	scaleName := flag.String("scale", "small", "dataset scale: small, medium, large")
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	runs := flag.Int("runs", 3, "runs per measurement (best is reported)")
	shards := flag.String("shards", "2,4", "comma-separated shard counts for -report scatter (serve default: 1,3)")
	maxOverhead := flag.String("max-overhead", "", "overhead ceilings for -report scatter, keyed by workload name or plan, e.g. 'bound_join=2,bound_join_wide=8' (fail if exceeded)")
	loadWorkers := flag.String("load-workers", "4,16", "comma-separated closed-loop client counts for -report serve")
	queries := flag.Int("queries", 200, "closed-loop queries per client for -report serve")
	sessions := flag.Int("sessions", 4, "distinct exploration sessions to replay for -report serve")
	sessionSteps := flag.Int("session-steps", 4, "refinement steps per replayed session for -report serve")
	overlap := flag.Float64("overlap", 0.75, "share of queries drawn from the session all clients share, for -report serve")
	minWarmSpeedup := flag.Float64("min-warm-speedup", 0, "fail -report serve if cached throughput beats uncached by less than this factor (0 = no gate)")
	maxP99Ratio := flag.Float64("max-p99-ratio", 0, "fail -report serve if the open-loop admitted p99 exceeds this multiple of the unloaded baseline (0 = no gate)")
	out := flag.String("out", "", "output file ('-' for stdout; default BENCH_PR2.json, BENCH_PR8.json, or BENCH_PR9.json by report)")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.ScaleSmall
	case "medium":
		scale = bench.ScaleMedium
	case "large":
		scale = bench.ScaleLarge
	default:
		log.Fatalf("bench: unknown scale %q", *scaleName)
	}

	var rep any
	var lines []string
	var gate func() error
	switch *report {
	case "parallel":
		if *out == "" {
			*out = "BENCH_PR2.json"
		}
		r, err := bench.RunParallelReport(*scaleName, scale, *workers, *runs)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		rep = r
		for _, x := range r.Results {
			lines = append(lines, fmt.Sprintf("%-14s %-10s seq %8.2fms  par %8.2fms  speedup %.2fx",
				x.Name, x.Dataset, x.SequentialMS, x.ParallelMS, x.Speedup))
		}
	case "scatter":
		if *out == "" {
			*out = "BENCH_PR8.json"
		}
		counts, err := parseCounts(*shards)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		limits, err := parseLimits(*maxOverhead)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		r, err := bench.RunScatterReport(*scaleName, scale, counts, *workers, *runs)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		rep = r
		for _, x := range r.Results {
			lines = append(lines, fmt.Sprintf("%-14s %-10s %d shards  single %8.2fms  scatter %8.2fms  overhead %.2fx  (%s, %d rows)",
				x.Name, x.Dataset, x.Shards, x.SingleMS, x.ScatterMS, x.Overhead, x.Plan, x.Rows))
		}
		if len(limits) > 0 {
			gate = func() error { return r.CheckOverhead(limits) }
		}
	case "serve":
		if *out == "" {
			*out = "BENCH_PR9.json"
		}
		counts, err := parseCounts(*shards)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		if *shards == "2,4" { // the scatter-oriented default; serve wants 1-node + 3-shard
			counts = []int{1, 3}
		}
		lw, err := parseCounts(*loadWorkers)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		r, err := bench.RunServeReport(*scaleName, scale, bench.ServeOptions{
			Shards:           counts,
			LoadWorkers:      lw,
			QueriesPerWorker: *queries,
			Sessions:         *sessions,
			SessionSteps:     *sessionSteps,
			Overlap:          *overlap,
		})
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		rep = r
		for _, x := range r.Results {
			lines = append(lines, fmt.Sprintf("%-22s %9.0f qps  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  (hits %d, coalesced %d, executions %d)",
				x.Config, x.QPS, x.P50MS, x.P95MS, x.P99MS, x.CacheHits, x.Coalesced, x.Executions))
		}
		for _, o := range r.OpenLoop {
			lines = append(lines, fmt.Sprintf("open-loop %d shards: offered %.0f qps, admitted %.0f qps, p99 %.2fms (baseline %.2fms), shed %d, timeouts %d, errors %d",
				o.Shards, o.OfferedQPS, o.AchievedQPS, o.P99MS, o.BaselineP99MS, o.Shed, o.Timeouts, o.Errors))
		}
		if *minWarmSpeedup > 0 || *maxP99Ratio > 0 {
			gate = func() error { return r.CheckServe(*minWarmSpeedup, *maxP99Ratio) }
		}
	default:
		log.Fatalf("bench: unknown report %q (want parallel, scatter, or serve)", *report)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("bench: %v", err)
	}
	for _, l := range lines {
		fmt.Fprintf(os.Stderr, "bench: %s\n", l)
	}
	if gate != nil {
		if err := gate(); err != nil {
			log.Fatalf("bench: overhead gate: %v", err)
		}
		fmt.Fprintf(os.Stderr, "bench: overhead gate passed (%s)\n", *maxOverhead)
	}
}

// parseCounts parses the -shards list ("2,4") into shard counts.
func parseCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards %q: want comma-separated counts >= 1", s)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// parseLimits parses -max-overhead ("bound_join=2,gather=2.5") into a
// workload-or-plan → ceiling map.
func parseLimits(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	limits := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		plan, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return nil, fmt.Errorf("-max-overhead %q: want plan=ratio pairs", s)
		}
		r, err := strconv.ParseFloat(val, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("-max-overhead %q: ratio %q is not a positive number", s, val)
		}
		limits[strings.TrimSpace(plan)] = r
	}
	return limits, nil
}

// Command bench runs the sequential-vs-parallel executor benchmark and
// writes a machine-readable report:
//
//	bench -scale medium -workers 0 -runs 3 -out BENCH_PR2.json
//
// It measures the three workloads the parallel pipeline targets — a
// multi-pattern BGP join, a GROUP BY aggregate, and end-to-end query
// synthesis — on every datagen preset, once with Workers=1 (the
// sequential baseline) and once with the worker pool. The JSON embeds
// GOMAXPROCS so readers can tell a one-core run (where ~1x is the
// expected honest result) from a multicore one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"re2xolap/internal/bench"
)

func main() {
	scaleName := flag.String("scale", "small", "dataset scale: small, medium, large")
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	runs := flag.Int("runs", 3, "runs per measurement (best is reported)")
	out := flag.String("out", "BENCH_PR2.json", "output file ('-' for stdout)")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.ScaleSmall
	case "medium":
		scale = bench.ScaleMedium
	case "large":
		scale = bench.ScaleLarge
	default:
		log.Fatalf("bench: unknown scale %q", *scaleName)
	}

	rep, err := bench.RunParallelReport(*scaleName, scale, *workers, *runs)
	if err != nil {
		log.Fatalf("bench: %v", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("bench: %v", err)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "bench: %-14s %-10s seq %8.2fms  par %8.2fms  speedup %.2fx\n",
			r.Name, r.Dataset, r.SequentialMS, r.ParallelMS, r.Speedup)
	}
}

// Command datagen writes one of the synthetic benchmark datasets as
// N-Triples:
//
//	datagen -dataset eurostat -obs 50000 -o eurostat.nt
//
// The datasets mirror the schema statistics of the paper's Table 3;
// see internal/datagen for the specs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"re2xolap/internal/datagen"
)

func main() {
	dataset := flag.String("dataset", "eurostat", "preset: eurostat, production, dbpedia")
	obs := flag.Int("obs", 10000, "number of observations")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	format := flag.String("format", "nt", "output format: nt (N-Triples) or snapshot (binary store image)")
	seed := flag.Int64("seed", 0, "override the preset's RNG seed (0 keeps it; same preset+obs+seed = same bytes)")
	flag.Parse()

	var spec datagen.Spec
	switch *dataset {
	case "eurostat":
		spec = datagen.EurostatLike(*obs)
	case "production":
		spec = datagen.ProductionLike(*obs)
	case "dbpedia":
		spec = datagen.DBpediaLike(*obs)
	default:
		log.Fatalf("datagen: unknown preset %q", *dataset)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	switch *format {
	case "nt":
		if err := spec.Write(bw); err != nil {
			log.Fatalf("datagen: %v", err)
		}
	case "snapshot":
		st, err := spec.BuildStore()
		if err != nil {
			log.Fatalf("datagen: %v", err)
		}
		if err := st.WriteSnapshot(bw); err != nil {
			log.Fatalf("datagen: %v", err)
		}
	default:
		log.Fatalf("datagen: unknown format %q", *format)
	}
	if err := bw.Flush(); err != nil {
		log.Fatalf("datagen: %v", err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %s (%d observations, %d members over %d levels)\n",
		spec.Name, spec.Observations, spec.MemberTotal(), spec.LevelTotal())
}

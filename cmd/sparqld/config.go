package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// applyConfigFile merges a JSON config file into fs after parsing.
// The file is a flat object whose keys are flag names and whose
// values are the flag values ("query-timeout": "2m", "workers": 4,
// "pprof": true). Flags given explicitly on the command line win over
// the file; everything else set in the file is applied through the
// flag's own parser, so durations, ints and bools get the same
// validation either way.
func applyConfigFile(fs *flag.FlagSet, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var values map[string]json.RawMessage
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&values); err != nil {
		return fmt.Errorf("config %s: %w", path, err)
	}

	// Command-line flags take precedence: Visit only walks flags that
	// were actually set.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	for name, v := range values {
		if name == "config" {
			return fmt.Errorf("config %s: a config file cannot set %q", path, name)
		}
		if fs.Lookup(name) == nil {
			return fmt.Errorf("config %s: unknown key %q (keys are flag names)", path, name)
		}
		if explicit[name] {
			continue
		}
		if err := fs.Set(name, configValue(v)); err != nil {
			return fmt.Errorf("config %s: key %q: %w", path, name, err)
		}
	}
	return nil
}

// configValue renders one JSON value as the string the flag parser
// expects: strings are unquoted, numbers and bools pass through as
// their literal text.
func configValue(raw json.RawMessage) string {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return s
	}
	return string(bytes.TrimSpace(raw))
}

package main

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sparqld.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestApplyConfigFile(t *testing.T) {
	fs := flag.NewFlagSet("sparqld", flag.ContinueOnError)
	addr := fs.String("addr", ":8085", "")
	timeout := fs.Duration("query-timeout", 5*time.Minute, "")
	workers := fs.Int("workers", 0, "")
	pprofOn := fs.Bool("pprof", false, "")
	gen := fs.String("gen", "", "")
	if err := fs.Parse([]string{"-addr", ":9999"}); err != nil {
		t.Fatal(err)
	}
	path := writeConfig(t, `{
		"addr": ":7777",
		"query-timeout": "2m",
		"workers": 4,
		"pprof": true,
		"gen": "eurostat"
	}`)
	if err := applyConfigFile(fs, path); err != nil {
		t.Fatal(err)
	}
	if *addr != ":9999" {
		t.Errorf("explicit -addr overridden by config: %q", *addr)
	}
	if *timeout != 2*time.Minute {
		t.Errorf("query-timeout = %v, want 2m", *timeout)
	}
	if *workers != 4 {
		t.Errorf("workers = %d, want 4", *workers)
	}
	if !*pprofOn {
		t.Error("pprof not applied")
	}
	if *gen != "eurostat" {
		t.Errorf("gen = %q", *gen)
	}
}

func TestApplyConfigFileErrors(t *testing.T) {
	newFS := func() *flag.FlagSet {
		fs := flag.NewFlagSet("sparqld", flag.ContinueOnError)
		fs.String("addr", "", "")
		fs.Duration("query-timeout", 0, "")
		fs.String("config", "", "")
		_ = fs.Parse(nil)
		return fs
	}
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown key", `{"adress": ":1"}`, "unknown key"},
		{"bad duration", `{"query-timeout": "soon"}`, "query-timeout"},
		{"config key", `{"config": "other.json"}`, "cannot set"},
		{"not an object", `[1, 2]`, "config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := applyConfigFile(newFS(), writeConfig(t, tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	if err := applyConfigFile(newFS(), filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestParseShards(t *testing.T) {
	groups, err := parseShards("3")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 || groups[0][0] != "local" || groups[2][0] != "local" {
		t.Fatalf("parseShards(3) = %v", groups)
	}
	groups, err = parseShards("http://a:1/sparql, local ,https://b:2/sparql")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1/sparql", "local", "https://b:2/sparql"}
	for i := range want {
		if len(groups[i]) != 1 || groups[i][0] != want[i] {
			t.Fatalf("groups = %v, want single-replica %v", groups, want)
		}
	}
	groups, err = parseShards("http://a1:1/sparql|http://a2:2/sparql, local | local ,https://b:3/sparql")
	if err != nil {
		t.Fatal(err)
	}
	wantGroups := [][]string{
		{"http://a1:1/sparql", "http://a2:2/sparql"},
		{"local", "local"},
		{"https://b:3/sparql"},
	}
	for i := range wantGroups {
		if len(groups[i]) != len(wantGroups[i]) {
			t.Fatalf("groups = %v, want %v", groups, wantGroups)
		}
		for j := range wantGroups[i] {
			if groups[i][j] != wantGroups[i][j] {
				t.Fatalf("groups = %v, want %v", groups, wantGroups)
			}
		}
	}
	for _, bad := range []string{"0", "-2", "", "ftp://x", "local,,local", "local||local", "local,|"} {
		if _, err := parseShards(bad); err == nil {
			t.Errorf("parseShards(%q): want error", bad)
		}
	}
}

func TestParseShardSlot(t *testing.T) {
	i, n, err := parseShardSlot("1/3")
	if err != nil || i != 1 || n != 3 {
		t.Fatalf("parseShardSlot(1/3) = %d, %d, %v", i, n, err)
	}
	for _, bad := range []string{"3/3", "-1/3", "1", "a/b", "1/0", ""} {
		if _, _, err := parseShardSlot(bad); err == nil {
			t.Errorf("parseShardSlot(%q): want error", bad)
		}
	}
}

// TestBuildHandlerTopologies runs the same query against the
// single-node handler, a 3-shard coordinator, and its shard servers
// joined back together, checking the coordinator answer is
// byte-identical to the single node and the shard split is real.
func TestBuildHandlerTopologies(t *testing.T) {
	const genName, obsN = "eurostat", 200
	reg := obs.NewRegistry()
	opts := []endpoint.Option{endpoint.WithRegistry(reg)}

	single, _, _, err := buildHandler(handlerConfig{Gen: genName, ObsCount: obsN, Addr: ":0"}, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	coord, coordinator, _, err := buildHandler(handlerConfig{Shards: "3", Gen: genName, ObsCount: obsN, Addr: ":0"},
		obs.NewRegistry(), []endpoint.Option{})
	if err != nil {
		t.Fatal(err)
	}
	if coordinator == nil {
		t.Fatal("coordinator mode did not return the coordinator")
	}
	defer coordinator.Close()

	query := `SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY ?p`
	fetch := func(h http.Handler) []byte {
		srv := httptest.NewServer(h)
		defer srv.Close()
		resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {query}})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	singleBody := fetch(single.Routes(endpoint.RoutesConfig{}))
	coordBody := fetch(coord.Routes(endpoint.RoutesConfig{}))
	if !bytes.Equal(singleBody, coordBody) {
		t.Fatalf("coordinator diverges from single node:\n%s\nvs\n%s", coordBody, singleBody)
	}

	// Shard servers hold disjoint, complete partitions.
	total := 0
	for i := 0; i < 3; i++ {
		parts, err := buildPartitions("", genName, obsN, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != 3 {
			t.Fatalf("want 3 partitions, got %d", len(parts))
		}
		total += parts[i].Len()
	}
	full, err := buildStore("", genName, obsN)
	if err != nil {
		t.Fatal(err)
	}
	if total != full.Len() {
		t.Fatalf("partition sizes sum to %d, full store has %d", total, full.Len())
	}
}

package main

import (
	"fmt"
	"time"

	"re2xolap/internal/obs"
	"re2xolap/internal/serve"
	"re2xolap/internal/shard"
	"re2xolap/internal/webui"
)

// fleetRefreshSeconds is the /fleet page auto-refresh cadence.
const fleetRefreshSeconds = 5

// fleetProvider assembles the /fleet dashboard snapshot from
// whichever pieces this deployment has: the coordinator (topology
// health, scrape staleness, per-shard latency), the serve stack
// (cache/admission stats), and the SLO tracker (tenant burn table).
// coord and stack may each be nil.
func fleetProvider(mode string, coord *shard.Coordinator, stack *serve.Stack, reg *obs.Registry) func() webui.FleetData {
	return func() webui.FleetData {
		d := webui.FleetData{Mode: mode, RefreshSeconds: fleetRefreshSeconds}
		if coord != nil {
			fillTopology(&d, coord, reg)
		}
		if stack != nil {
			fillServe(&d, stack)
		}
		return d
	}
}

// fillTopology renders the coordinator sections: replica health joined
// with fleet scrape state, and per-shard latency quantiles read from
// the coordinator's own registry series.
func fillTopology(d *webui.FleetData, coord *shard.Coordinator, reg *obs.Registry) {
	d.Shards = coord.Shards()
	for _, n := range coord.Replicas() {
		d.ReplicaCount += n
	}
	d.Epoch = reg.Gauge("re2xolap_topology_epoch", "").Value()

	// FleetStatus (scrape state) is nil when fleet collection is off;
	// Status (routing health) always reports. Join them by position —
	// both walk the same view in the same order.
	scrapes := map[[2]int]shard.FleetInstance{}
	for _, fi := range coord.FleetStatus() {
		scrapes[[2]int{fi.Shard, fi.Replica}] = fi
	}
	for _, rs := range coord.Status() {
		row := webui.FleetReplicaRow{
			Shard: rs.Shard, Replica: rs.Replica, Spec: rs.Spec,
			Up: rs.Up, Probed: rs.Probed,
		}
		if fi, ok := scrapes[[2]int{rs.Shard, rs.Replica}]; ok {
			row.Scrapable, row.Scraped, row.Stale, row.Err = fi.Scrapable, fi.Scraped, fi.Stale, fi.Err
			if fi.Scraped {
				row.Age = fi.Age.Round(time.Millisecond).String()
			}
		}
		d.Replicas = append(d.Replicas, row)
	}

	for i := 0; i < d.Shards; i++ {
		l := obs.L("shard", fmt.Sprint(i))
		h := reg.Histogram("re2xolap_shard_query_seconds", "", nil, l)
		d.Latency = append(d.Latency, webui.ShardLatencyRow{
			Shard:   fmt.Sprint(i),
			Queries: reg.Counter("re2xolap_shard_queries_total", "", l).Value(),
			Errors:  reg.Counter("re2xolap_shard_errors_total", "", l).Value(),
			P50:     fmtSeconds(h.Quantile(0.5)),
			P95:     fmtSeconds(h.Quantile(0.95)),
			P99:     fmtSeconds(h.Quantile(0.99)),
		})
	}
}

// fillServe renders the serving-stack and tenant-SLO sections.
func fillServe(d *webui.FleetData, stack *serve.Stack) {
	st := stack.Stats()
	s := &webui.ServeStats{
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Coalesced: st.Coalesced, Executions: st.Executions,
		QueueDepth: st.QueueDepth, Sheds: st.Sheds,
		CacheHitRatio: "n/a",
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		s.CacheHitRatio = fmt.Sprintf("%.1f%%", 100*float64(st.CacheHits)/float64(lookups))
	}
	d.Serve = s

	slo := stack.SLO()
	if slo == nil {
		return
	}
	rep := slo.Report()
	for _, obj := range rep.Objectives {
		d.SLOObjectives = append(d.SLOObjectives, obj.Name)
	}
	for _, tenant := range slo.Tenants() {
		tr := rep.Tenants[tenant]
		if tr == nil {
			continue
		}
		for _, obj := range rep.Objectives {
			row := webui.TenantSLORow{
				Tenant: tenant, Objective: obj.Name,
				Queries: tr.Queries, Sheds: tr.Sheds,
				CacheHitRatio: fmt.Sprintf("%.1f%%", 100*tr.CacheHitRatio),
			}
			burns := []struct {
				window string
				out    *string
			}{
				{"5m", &row.Burn5m}, {"1h", &row.Burn1h}, {"6h", &row.Burn6h},
			}
			for _, b := range burns {
				w := tr.Windows[b.window]
				if w == nil || w.Objectives[obj.Name] == nil {
					*b.out = "-"
					continue
				}
				burn := w.Objectives[obj.Name].BurnRate
				*b.out = fmt.Sprintf("%.2f", burn)
				if burn > 1 {
					row.Hot = true
				}
			}
			d.Tenants = append(d.Tenants, row)
		}
	}
}

// fmtSeconds renders a latency quantile human-first.
func fmtSeconds(s float64) string {
	if s <= 0 {
		return "-"
	}
	return time.Duration(s * float64(time.Second)).Round(100 * time.Microsecond).String()
}

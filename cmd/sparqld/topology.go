package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/shard"
	"re2xolap/internal/store"
)

// parseShards interprets the -shards flag. A plain integer N means N
// in-process partitions of the local dataset; otherwise the value is
// a comma-separated list with one entry per shard, each either a
// remote /sparql base URL or the word "local" for an in-process
// partition. Shard i of the partitioner maps to entry i, so a mixed
// deployment must list entries in partition order on every node.
func parseShards(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("-shards %d: shard count must be >= 1", n)
		}
		specs := make([]string, n)
		for i := range specs {
			specs[i] = "local"
		}
		return specs, nil
	}
	specs := strings.Split(s, ",")
	for i, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			return nil, fmt.Errorf("-shards: empty entry at position %d", i)
		}
		if spec != "local" && !strings.HasPrefix(spec, "http://") && !strings.HasPrefix(spec, "https://") {
			return nil, fmt.Errorf("-shards entry %q: want a shard count, %q, or an http(s) URL", spec, "local")
		}
		specs[i] = spec
	}
	return specs, nil
}

// parseShardSlot interprets the -shard flag's "i/n" form: this
// process serves only partition i of an n-way subject-hash split.
func parseShardSlot(s string) (i, n int, err error) {
	idx, count, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(strings.TrimSpace(idx))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(count))
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/n (e.g. 0/3)", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}

// buildPartitions splits the dataset named by -data/-gen into n
// stores using the shared subject-hash partitioner, so every node
// that runs this function with the same inputs agrees on which shard
// owns which subject. Plain N-Triples files stream straight into the
// partitions; snapshots and generated datasets are materialized once
// and then split.
func buildPartitions(data, gen string, obsCount, n int) ([]*store.Store, error) {
	p := shard.Partitioner{N: n}
	if data != "" && !strings.HasSuffix(data, ".snap") {
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		stores, total, err := store.LoadPartitioned(f, n, p.Shard)
		if err != nil {
			return nil, fmt.Errorf("partitioning %s: %w", data, err)
		}
		log.Printf("sparqld: partitioned %d triples from %s into %d shards", total, data, n)
		return stores, nil
	}
	full, err := buildStore(data, gen, obsCount)
	if err != nil {
		return nil, err
	}
	parts := p.Split(full.Triples())
	stores := make([]*store.Store, n)
	for i, ts := range parts {
		stores[i] = store.New()
		if err := stores[i].AddAll(ts); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		stores[i].Compact()
	}
	log.Printf("sparqld: partitioned %d triples into %d shards", full.Len(), n)
	return stores, nil
}

// buildBackends turns the -shards specs into one endpoint.Client per
// shard. Local partitions are only built when at least one entry asks
// for one, so an all-remote coordinator needs no -data/-gen.
func buildBackends(specs []string, data, gen string, obsCount, workers int) ([]endpoint.Client, error) {
	needLocal := false
	for _, spec := range specs {
		if spec == "local" {
			needLocal = true
		}
	}
	var parts []*store.Store
	if needLocal {
		var err error
		parts, err = buildPartitions(data, gen, obsCount, len(specs))
		if err != nil {
			return nil, err
		}
	}
	backends := make([]endpoint.Client, len(specs))
	for i, spec := range specs {
		if spec == "local" {
			backends[i] = endpoint.NewInProcess(parts[i], endpoint.WithWorkers(workers))
			log.Printf("sparqld: shard %d: in-process, %d triples", i, parts[i].Len())
		} else {
			backends[i] = endpoint.NewHTTPClient(spec)
			log.Printf("sparqld: shard %d: remote %s", i, spec)
		}
	}
	return backends, nil
}

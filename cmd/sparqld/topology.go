package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/shard"
	"re2xolap/internal/store"
)

// parseShards interprets the -shards flag as replica groups: one
// comma-separated entry per shard, each entry a |-separated list of
// replicas in preference order. A replica is a remote /sparql base URL
// or the word "local" for an in-process partition; a plain integer N
// means N single-replica in-process partitions of the local dataset.
//
//	-shards 3
//	-shards http://a:8085/sparql,local,http://b:8085/sparql
//	-shards "http://a1/sparql|http://a2/sparql,http://b1/sparql|http://b2/sparql"
//
// Shard i of the partitioner maps to entry i, so a mixed deployment
// must list entries in partition order on every node. Replicas within
// a group must hold identical copies of partition i — that is what
// lets the coordinator fail over between them without changing answer
// bytes.
func parseShards(s string) ([][]string, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.Atoi(s); err == nil {
		if n < 1 {
			return nil, fmt.Errorf("-shards %d: shard count must be >= 1", n)
		}
		groups := make([][]string, n)
		for i := range groups {
			groups[i] = []string{"local"}
		}
		return groups, nil
	}
	entries := strings.Split(s, ",")
	groups := make([][]string, len(entries))
	for i, entry := range entries {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			return nil, fmt.Errorf("-shards: empty entry at position %d", i)
		}
		for _, spec := range strings.Split(entry, "|") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				return nil, fmt.Errorf("-shards entry %d: empty replica spec", i)
			}
			if err := validateReplicaSpec(spec); err != nil {
				return nil, err
			}
			groups[i] = append(groups[i], spec)
		}
	}
	return groups, nil
}

// validateReplicaSpec checks one replica spec's shape.
func validateReplicaSpec(spec string) error {
	if spec == "local" || strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
		return nil
	}
	return fmt.Errorf("-shards replica %q: want a shard count, %q, or an http(s) URL", spec, "local")
}

// parseShardSlot interprets the -shard flag's "i/n" form: this
// process serves only partition i of an n-way subject-hash split.
func parseShardSlot(s string) (i, n int, err error) {
	idx, count, ok := strings.Cut(s, "/")
	if ok {
		i, err = strconv.Atoi(strings.TrimSpace(idx))
		if err == nil {
			n, err = strconv.Atoi(strings.TrimSpace(count))
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want i/n (e.g. 0/3)", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}

// buildPartitions splits the dataset named by -data/-gen into n
// stores using the shared subject-hash partitioner, so every node
// that runs this function with the same inputs agrees on which shard
// owns which subject. Plain N-Triples files stream straight into the
// partitions; snapshots and generated datasets are materialized once
// and then split.
func buildPartitions(data, gen string, obsCount, n int) ([]*store.Store, error) {
	p := shard.Partitioner{N: n}
	if data != "" && !strings.HasSuffix(data, ".snap") {
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		stores, total, err := store.LoadPartitioned(f, n, p.Shard)
		if err != nil {
			return nil, fmt.Errorf("partitioning %s: %w", data, err)
		}
		log.Printf("sparqld: partitioned %d triples from %s into %d shards", total, data, n)
		return stores, nil
	}
	full, err := buildStore(data, gen, obsCount)
	if err != nil {
		return nil, err
	}
	parts := p.Split(full.Triples())
	stores := make([]*store.Store, n)
	for i, ts := range parts {
		stores[i] = store.New()
		if err := stores[i].AddAll(ts); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		stores[i].Compact()
	}
	log.Printf("sparqld: partitioned %d triples into %d shards", full.Len(), n)
	return stores, nil
}

// localDialer turns the -shards replica groups into a shard.Dialer.
// Local partitions are only built when at least one spec asks for one,
// so an all-remote coordinator needs no -data/-gen. All "local"
// replicas of shard i share partition store i (the store is read-only
// under query), which is exactly the identical-copy contract replica
// failover relies on. Going through a Dialer (rather than pre-built
// clients) keeps the replica URL specs attached to the coordinator's
// view, which is what lets fleet metrics collection find each
// replica's /metrics.
func localDialer(groups [][]string, data, gen string, obsCount, workers int) (shard.Dialer, error) {
	needLocal := false
	for _, g := range groups {
		for _, spec := range g {
			if spec == "local" {
				needLocal = true
			}
		}
	}
	var parts []*store.Store
	if needLocal {
		var err error
		parts, err = buildPartitions(data, gen, obsCount, len(groups))
		if err != nil {
			return nil, err
		}
	}
	return func(shardIdx, replica int, spec string) (endpoint.Client, error) {
		if spec == "local" {
			log.Printf("sparqld: shard %d replica %d: in-process, %d triples", shardIdx, replica, parts[shardIdx].Len())
			return endpoint.NewInProcess(parts[shardIdx], endpoint.WithWorkers(workers)), nil
		}
		if err := validateReplicaSpec(spec); err != nil {
			return nil, err
		}
		log.Printf("sparqld: shard %d replica %d: remote %s", shardIdx, replica, spec)
		return endpoint.NewHTTPClient(spec), nil
	}, nil
}

// remoteDialer is the shard.Dialer behind -topology: file topologies
// name remote replicas only ("local" needs a partition count fixed at
// startup, which contradicts a topology that can change shape).
func remoteDialer(shardIdx, replica int, spec string) (endpoint.Client, error) {
	if spec == "local" {
		return nil, fmt.Errorf("-topology file: shard %d replica %d: %q replicas are not supported in file topologies (use -shards for in-process partitions)", shardIdx, replica, spec)
	}
	if err := validateReplicaSpec(spec); err != nil {
		return nil, err
	}
	log.Printf("sparqld: shard %d replica %d: remote %s", shardIdx, replica, spec)
	return endpoint.NewHTTPClient(spec), nil
}

// Command sparqld serves an RDF dataset over the SPARQL 1.1 protocol
// (query via GET or POST, application/sparql-results+json responses),
// playing the role of the external triplestore in the paper's
// architecture:
//
//	sparqld -addr :8085 -data dataset.nt
//	sparqld -addr :8085 -gen eurostat -obs 50000
//
// Then point cmd/re2xolap (or any SPARQL client) at
// http://localhost:8085/sparql.
//
// The server is hardened for untrusted traffic: per-request query
// deadlines (-query-timeout), in-flight limiting with 503 shedding
// (-max-inflight), panic recovery, Slowloris protection via
// ReadHeaderTimeout, and graceful shutdown on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/store"
)

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	data := flag.String("data", "", "N-Triples/Turtle file to load (.snap loads a binary snapshot)")
	gen := flag.String("gen", "", "generate a synthetic dataset instead: eurostat, production, dbpedia")
	obsCount := flag.Int("obs", 10000, "observations for -gen")
	queryTimeout := flag.Duration("query-timeout", 5*time.Minute, "per-request query execution deadline (0 disables)")
	maxInFlight := flag.Int("max-inflight", 64, "max concurrent requests before shedding with 503 (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "how long to wait for in-flight requests on shutdown")
	workers := flag.Int("workers", 0, "executor worker goroutines per query (0 = GOMAXPROCS, 1 = sequential)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this as JSON lines to stderr (0 disables)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	flag.Parse()

	st, err := buildStore(*data, *gen, *obsCount)
	if err != nil {
		log.Fatalf("sparqld: %v", err)
	}
	stats := st.Stats()
	log.Printf("sparqld: serving %d triples (%d terms, %d predicates) on %s/sparql (metrics on /metrics)",
		stats.Triples, stats.Terms, stats.Predicates, *addr)

	srv := newServer(*addr, st, endpoint.HardenConfig{
		QueryTimeout: *queryTimeout,
		MaxInFlight:  *maxInFlight,
	}, *queryTimeout, *workers, *slowQuery, *pprofOn)

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then give
	// in-flight queries the grace period before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("sparqld: serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("sparqld: signal received, draining for up to %s...", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("sparqld: forced shutdown: %v", err)
			_ = srv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("sparqld: serve: %v", err)
		}
		log.Printf("sparqld: shutdown complete")
	}
}

// newServer assembles the hardened http.Server: the SPARQL handler
// behind the Harden middleware stack, plus protocol-level timeouts.
// ReadHeaderTimeout bounds how long a client may dribble headers
// (Slowloris); WriteTimeout leaves headroom over the query deadline so
// slow result writes are bounded too.
func newServer(addr string, st *store.Store, cfg endpoint.HardenConfig, queryTimeout time.Duration, workers int, slowQuery time.Duration, pprofOn bool) *http.Server {
	// Metrics are always on — the registry costs a few atomic adds per
	// request and /metrics is how operators see inside the server.
	opts := []endpoint.Option{
		endpoint.WithRegistry(obs.NewRegistry()),
		// Each query fans its joins and aggregations over this many
		// goroutines; -max-inflight bounds how many such queries run at
		// once, so total parallelism is workers x inflight.
		endpoint.WithWorkers(workers),
	}
	if slowQuery > 0 {
		opts = append(opts, endpoint.WithSlowQueryLog(obs.NewSlowLog(os.Stderr, slowQuery)))
	}
	handler := endpoint.NewServer(st, opts...)
	mux := handler.Routes(endpoint.RoutesConfig{Harden: cfg, Pprof: pprofOn})
	writeTimeout := 15 * time.Minute
	if queryTimeout > 0 {
		writeTimeout = queryTimeout + time.Minute
	}
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}

func buildStore(data, gen string, obs int) (*store.Store, error) {
	switch {
	case data != "" && gen != "":
		return nil, fmt.Errorf("-data and -gen are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(data, ".snap") {
			st, err := store.ReadSnapshot(f)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", data, err)
			}
			log.Printf("sparqld: loaded %d triples from snapshot %s", st.Len(), data)
			return st, nil
		}
		st := store.New()
		n, err := st.Load(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		log.Printf("sparqld: loaded %d triples from %s", n, data)
		return st, nil
	case gen != "":
		spec, err := presetByName(gen, obs)
		if err != nil {
			return nil, err
		}
		log.Printf("sparqld: generating %s with %d observations...", gen, obs)
		return spec.BuildStore()
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}

func presetByName(name string, obs int) (datagen.Spec, error) {
	switch name {
	case "eurostat":
		return datagen.EurostatLike(obs), nil
	case "production":
		return datagen.ProductionLike(obs), nil
	case "dbpedia":
		return datagen.DBpediaLike(obs), nil
	default:
		return datagen.Spec{}, fmt.Errorf("unknown preset %q (want eurostat, production, or dbpedia)", name)
	}
}

// Command sparqld serves an RDF dataset over the SPARQL 1.1 protocol
// (query via GET or POST, application/sparql-results+json responses),
// playing the role of the external triplestore in the paper's
// architecture:
//
//	sparqld -addr :8085 -data dataset.nt
//	sparqld -addr :8085 -gen eurostat -obs 50000
//
// Then point cmd/re2xolap (or any SPARQL client) at
// http://localhost:8085/sparql.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/store"
)

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	data := flag.String("data", "", "N-Triples/Turtle file to load (.snap loads a binary snapshot)")
	gen := flag.String("gen", "", "generate a synthetic dataset instead: eurostat, production, dbpedia")
	obs := flag.Int("obs", 10000, "observations for -gen")
	flag.Parse()

	st, err := buildStore(*data, *gen, *obs)
	if err != nil {
		log.Fatalf("sparqld: %v", err)
	}
	stats := st.Stats()
	log.Printf("sparqld: serving %d triples (%d terms, %d predicates) on %s/sparql",
		stats.Triples, stats.Terms, stats.Predicates, *addr)

	mux := http.NewServeMux()
	mux.Handle("/sparql", endpoint.NewServer(st))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok %d triples\n", st.Len())
	})
	srv := &http.Server{
		Addr:         *addr,
		Handler:      mux,
		ReadTimeout:  time.Minute,
		WriteTimeout: 15 * time.Minute, // analytical queries can be slow
	}
	log.Fatal(srv.ListenAndServe())
}

func buildStore(data, gen string, obs int) (*store.Store, error) {
	switch {
	case data != "" && gen != "":
		return nil, fmt.Errorf("-data and -gen are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(data, ".snap") {
			st, err := store.ReadSnapshot(f)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", data, err)
			}
			log.Printf("sparqld: loaded %d triples from snapshot %s", st.Len(), data)
			return st, nil
		}
		st := store.New()
		n, err := st.Load(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		log.Printf("sparqld: loaded %d triples from %s", n, data)
		return st, nil
	case gen != "":
		spec, err := presetByName(gen, obs)
		if err != nil {
			return nil, err
		}
		log.Printf("sparqld: generating %s with %d observations...", gen, obs)
		return spec.BuildStore()
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}

func presetByName(name string, obs int) (datagen.Spec, error) {
	switch name {
	case "eurostat":
		return datagen.EurostatLike(obs), nil
	case "production":
		return datagen.ProductionLike(obs), nil
	case "dbpedia":
		return datagen.DBpediaLike(obs), nil
	default:
		return datagen.Spec{}, fmt.Errorf("unknown preset %q (want eurostat, production, or dbpedia)", name)
	}
}

// Command sparqld serves an RDF dataset over the SPARQL 1.1 protocol
// (query via GET or POST, application/sparql-results+json responses),
// playing the role of the external triplestore in the paper's
// architecture:
//
//	sparqld -addr :8085 -data dataset.nt
//	sparqld -addr :8085 -gen eurostat -obs 50000
//
// Then point cmd/re2xolap (or any SPARQL client) at
// http://localhost:8085/sparql.
//
// One binary covers three roles:
//
//   - single node (default): serve the whole dataset;
//   - shard server (-shard i/n): serve only partition i of an n-way
//     subject-hash split of the dataset;
//   - coordinator (-shards N | -shards "a|b,c|d" | -topology file):
//     scatter-gather queries over replica groups — each shard an
//     ordered set of identical replicas with health probing
//     (-health-interval), failover, and optional hedging
//     (-hedge-after) — with answers byte-identical to a single node
//     over the union.
//
// Coordinator topologies can change at runtime: SIGHUP re-resolves
// the -topology file immediately, and -topology-poll watches its
// mtime. In-flight queries drain on the topology they started with.
//
// Every flag can also come from a JSON config file (-config); flags
// given explicitly on the command line override the file.
//
// The listener comes up before the dataset finishes loading: /livez
// answers 200 immediately (the process is alive) while /healthz and
// /readyz answer 503 with a JSON body until the store is loaded —
// and, on coordinators with probing enabled, until every shard has at
// least one probe-confirmed healthy replica — so load balancers do
// not route to cold processes.
//
// The server is hardened for untrusted traffic: per-request query
// deadlines (-query-timeout), in-flight limiting with 503 shedding
// (-max-inflight), panic recovery, Slowloris protection via
// ReadHeaderTimeout, and graceful shutdown on SIGINT/SIGTERM.
//
// A serving stack (internal/serve) layers on in every role:
// -result-cache enables a generation-invalidated result cache with
// single-flight deduplication of concurrent identical queries, and
// -max-concurrent/-queue-budget add per-tenant admission control
// (tenants named by -tenant-header) that sheds overflow with
// 429 + Retry-After instead of queueing it toward timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/serve"
	"re2xolap/internal/shard"
	"re2xolap/internal/store"
	"re2xolap/internal/webui"
)

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	data := flag.String("data", "", "N-Triples/Turtle file to load (.snap loads a binary snapshot)")
	gen := flag.String("gen", "", "generate a synthetic dataset instead: eurostat, production, dbpedia")
	obsCount := flag.Int("obs", 10000, "observations for -gen")
	queryTimeout := flag.Duration("query-timeout", 5*time.Minute, "per-request query execution deadline (0 disables)")
	maxInFlight := flag.Int("max-inflight", 64, "max concurrent requests before shedding with 503 (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "how long to wait for in-flight requests on shutdown")
	workers := flag.Int("workers", 0, "executor worker goroutines per query (0 = GOMAXPROCS, 1 = sequential)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this as JSON lines to stderr (0 disables)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	configPath := flag.String("config", "", "JSON config file with flag-name keys; explicit flags override it")
	shards := flag.String("shards", "", "coordinator mode: shard count, or comma list of shard replica groups ('|'-separated /sparql URLs or 'local')")
	shardSlot := flag.String("shard", "", "shard-server mode: serve only partition i of n, as 'i/n'")
	degraded := flag.Bool("degraded", false, "coordinator: answer with partial results when shards fail (sets X-Re2xolap-Incomplete)")
	topology := flag.String("topology", "", "coordinator mode: JSON topology file naming replica URLs per shard (reloaded on SIGHUP)")
	topologyPoll := flag.Duration("topology-poll", 0, "poll the -topology file's mtime this often and reload on change (0 disables)")
	healthInterval := flag.Duration("health-interval", 0, "coordinator: probe every replica this often (0 disables health probing)")
	healthTimeout := flag.Duration("health-timeout", time.Second, "coordinator: per-probe deadline")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinator: hedge a shard call to the next replica after this budget (0 disables)")
	planCache := flag.Int("plan-cache", 0, "coordinator: plan cache capacity (0 = default, negative disables)")
	traceExport := flag.String("trace-export", "", "append per-request OTLP/JSON trace lines to this file ('-' for stdout)")
	debugQueries := flag.Int("debug-queries", 0, "keep the last N query profiles and serve them as JSON on /debug/queries (0 disables)")
	resultCache := flag.Int("result-cache", 0, "serve-layer result cache capacity in answers; generation-invalidated, with single-flight dedup (0 disables)")
	maxConcurrent := flag.Int("max-concurrent", 0, "serve-layer per-tenant concurrent query limit; excess queues, overflow is shed with 429 (0 disables admission)")
	queueBudget := flag.Int("queue-budget", 0, "serve-layer per-tenant admission queue bound (0 = default 64; needs -max-concurrent)")
	tenantHeader := flag.String("tenant-header", "", "HTTP header naming the tenant for per-tenant admission (empty = all requests share one tenant)")
	sloFlag := flag.String("slo", "", "per-tenant SLO objectives, e.g. 'p99<250ms,err<1%': tracks multi-window burn rates per tenant, serves /debug/slo and the /fleet tenant table")
	fleetScrape := flag.Duration("fleet-scrape", 0, "coordinator: background fleet metrics collection interval; 0 scrapes on each /metrics/fleet request")
	slowQueryFile := flag.String("slow-query-file", "", "write the -slow-query log to this file with size-capped rotation (one .1 generation) instead of stderr")
	slowQueryMax := flag.Int64("slow-query-max-bytes", 0, "rotate -slow-query-file past this size (0 = 64 MiB)")
	flag.Parse()

	if *configPath != "" {
		if err := applyConfigFile(flag.CommandLine, *configPath); err != nil {
			log.Fatalf("sparqld: %v", err)
		}
	}
	if *shards != "" && *shardSlot != "" {
		log.Fatalf("sparqld: -shards (coordinator) and -shard (shard server) are mutually exclusive")
	}
	if *topology != "" && (*shards != "" || *shardSlot != "") {
		log.Fatalf("sparqld: -topology is a coordinator mode of its own; drop -shards/-shard")
	}

	// Metrics are always on — the registry costs a few atomic adds per
	// request and /metrics is how operators see inside the server.
	// Process self-metrics ride along so the fleet view can show each
	// replica's runtime health (goroutines, heap, GC, uptime).
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg)
	opts := []endpoint.Option{
		endpoint.WithRegistry(reg),
		// Each query fans its joins and aggregations over this many
		// goroutines; -max-inflight bounds how many such queries run at
		// once, so total parallelism is workers x inflight.
		endpoint.WithWorkers(*workers),
	}
	if *slowQuery > 0 {
		if *slowQueryFile != "" {
			sl, _, err := obs.NewRotatingSlowLog(*slowQueryFile, *slowQuery, *slowQueryMax)
			if err != nil {
				log.Fatalf("sparqld: slow-query-file: %v", err)
			}
			opts = append(opts, endpoint.WithSlowQueryLog(sl))
		} else {
			opts = append(opts, endpoint.WithSlowQueryLog(obs.NewSlowLog(os.Stderr, *slowQuery)))
		}
	} else if *slowQueryFile != "" {
		log.Fatalf("sparqld: -slow-query-file needs -slow-query to set the threshold")
	}
	if *traceExport != "" {
		sink, err := openTraceSink(*traceExport)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		opts = append(opts, endpoint.WithTraceExport(sink))
	}
	if *debugQueries > 0 {
		opts = append(opts, endpoint.WithQueryLog(obs.NewQueryRing(*debugQueries)))
	}
	if *tenantHeader != "" {
		opts = append(opts, endpoint.WithTenantHeader(*tenantHeader))
	}

	hcfg := handlerConfig{
		Shards:         *shards,
		ShardSlot:      *shardSlot,
		Topology:       *topology,
		Data:           *data,
		Gen:            *gen,
		ObsCount:       *obsCount,
		Workers:        *workers,
		Degraded:       *degraded,
		Addr:           *addr,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		HedgeAfter:     *hedgeAfter,
		PlanCache:      *planCache,
		ResultCache:    *resultCache,
		MaxConcurrent:  *maxConcurrent,
		QueueBudget:    *queueBudget,
		SLO:            *sloFlag,
		FleetScrape:    *fleetScrape,
	}
	if _, err := hcfg.sloObjectives(); err != nil {
		log.Fatalf("sparqld: %v", err) // fail fast, before the dataset loads
	}

	// The listener comes up immediately on a holding handler that
	// answers /livez 200 and everything else 503 "loading", then the
	// real handler is built (dataset load, partitioning, topology
	// resolution) and swapped in. Probers see an honest not-ready
	// instead of a connection refusal.
	sw := &swapHandler{}
	sw.Store(loadingHandler())
	srv := newHTTPServer(*addr, sw, *queryTimeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var coord atomic.Pointer[shard.Coordinator]
	go func() {
		handler, c, ft, err := buildHandler(hcfg, reg, opts)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		sw.Store(handler.Routes(endpoint.RoutesConfig{
			Harden: endpoint.HardenConfig{
				QueryTimeout: *queryTimeout,
				MaxInFlight:  *maxInFlight,
			},
			Pprof: *pprofOn,
		}))
		if c != nil {
			coord.Store(c)
			go watchTopology(ctx, c, ft, *topologyPoll)
		}
	}()

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then give
	// in-flight queries the grace period before exiting.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("sparqld: serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("sparqld: signal received, draining for up to %s...", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("sparqld: forced shutdown: %v", err)
			_ = srv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("sparqld: serve: %v", err)
		}
		if c := coord.Load(); c != nil {
			c.Close()
		}
		log.Printf("sparqld: shutdown complete")
	}
}

// swapHandler atomically swaps the serving handler: the holding
// handler during startup, the real routes once the dataset is loaded.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) Store(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// loadingHandler is what the listener serves before the store is
// loaded: alive but not ready.
func loadingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/livez" {
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, `{"status":"ok"}`+"\n")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, `{"status":"unavailable","reason":"store loading"}`+"\n")
	})
}

// watchTopology applies live topology changes to a running
// coordinator: SIGHUP forces a re-resolve, and — when the topology
// came from a file and -topology-poll is set — the file's mtime is
// polled so edits apply without any signal. Reload is cheap and
// idempotent (an unchanged view is a no-op), so spurious wakeups are
// harmless.
func watchTopology(ctx context.Context, c *shard.Coordinator, ft *shard.FileTopology, poll time.Duration) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	var tick <-chan time.Time
	if ft != nil && poll > 0 {
		t := time.NewTicker(poll)
		defer t.Stop()
		tick = t.C
	}
	reload := func(trigger string) {
		changed, err := c.Reload()
		switch {
		case err != nil:
			log.Printf("sparqld: topology reload (%s): %v", trigger, err)
		case changed:
			log.Printf("sparqld: topology reloaded (%s): %d shards, replicas %v", trigger, c.Shards(), c.Replicas())
		case trigger == "sighup":
			// An explicit signal deserves an acknowledgment; the poll
			// path stays quiet to avoid a log line per tick.
			log.Printf("sparqld: topology reload (sighup): unchanged")
		}
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			reload("sighup")
		case <-tick:
			changed, err := ft.Changed()
			if err != nil {
				log.Printf("sparqld: topology poll: %v", err)
				continue
			}
			if changed {
				reload("poll")
			}
		}
	}
}

// handlerConfig is the flag bundle buildHandler consumes.
type handlerConfig struct {
	Shards    string
	ShardSlot string
	Topology  string
	Data      string
	Gen       string
	ObsCount  int
	Workers   int
	Degraded  bool
	Addr      string

	HealthInterval time.Duration
	HealthTimeout  time.Duration
	HedgeAfter     time.Duration
	PlanCache      int

	ResultCache   int
	MaxConcurrent int
	QueueBudget   int

	SLO         string
	FleetScrape time.Duration
}

// serving reports whether any serve-layer feature is requested.
func (cfg handlerConfig) serving() bool {
	return cfg.ResultCache > 0 || cfg.MaxConcurrent > 0 || cfg.SLO != ""
}

// sloObjectives parses the -slo flag (empty means no SLO tracking).
func (cfg handlerConfig) sloObjectives() ([]serve.Objective, error) {
	if cfg.SLO == "" {
		return nil, nil
	}
	objs, err := serve.ParseSLO(cfg.SLO)
	if err != nil {
		return nil, fmt.Errorf("-slo: %w", err)
	}
	return objs, nil
}

// wrapServe builds the serving stack (result cache, single-flight
// dedup, admission control, SLO tracking) around the executing client
// when any of its flags ask for it. The second return is the stack
// itself (nil when no serve-layer feature is on) so callers can mount
// its introspection endpoints.
func (cfg handlerConfig) wrapServe(c endpoint.Client, reg *obs.Registry) (endpoint.Client, *serve.Stack) {
	if !cfg.serving() {
		return c, nil
	}
	sopts := []serve.Option{serve.WithRegistry(reg)}
	if cfg.ResultCache > 0 {
		sopts = append(sopts, serve.WithResultCache(cfg.ResultCache))
	}
	if cfg.MaxConcurrent > 0 {
		sopts = append(sopts, serve.WithAdmission(serve.AdmissionConfig{
			MaxConcurrent: cfg.MaxConcurrent,
			QueueBudget:   cfg.QueueBudget,
		}))
	}
	// Flag syntax was validated at startup; a parse error here is
	// impossible short of a mutated config.
	if objs, err := cfg.sloObjectives(); err == nil && len(objs) > 0 {
		sopts = append(sopts, serve.WithSLO(serve.SLOConfig{Objectives: objs}))
	}
	log.Printf("sparqld: serving stack on (result-cache=%d, max-concurrent=%d, queue-budget=%d, slo=%q)",
		cfg.ResultCache, cfg.MaxConcurrent, cfg.QueueBudget, cfg.SLO)
	stack := serve.New(c, sopts...)
	return stack, stack
}

// fleetRoutes mounts the observability endpoints this deployment has:
// /metrics/fleet on coordinators, /debug/slo wherever an SLO tracker
// runs, and the /fleet dashboard whenever there is anything to show.
func (cfg handlerConfig) fleetRoutes(mode string, coord *shard.Coordinator, stack *serve.Stack, reg *obs.Registry) []endpoint.Option {
	var routes []endpoint.Option
	if coord != nil {
		routes = append(routes, endpoint.WithRoute("/metrics/fleet", coord.FleetHandler()))
	}
	if stack != nil && stack.SLO() != nil {
		routes = append(routes, endpoint.WithRoute("/debug/slo", stack.SLO().Handler()))
	}
	if coord != nil || stack != nil {
		routes = append(routes, endpoint.WithRoute("/fleet", webui.NewFleet(fleetProvider(mode, coord, stack, reg))))
	}
	return routes
}

// shardOptions translates the coordinator flags to shard options.
func (cfg handlerConfig) shardOptions(reg *obs.Registry) []shard.Option {
	opts := []shard.Option{
		shard.WithWorkers(cfg.Workers),
		shard.WithDegraded(cfg.Degraded),
		shard.WithRegistry(reg),
		shard.WithHealth(shard.HealthConfig{
			Interval: cfg.HealthInterval,
			Timeout:  cfg.HealthTimeout,
		}),
		shard.WithHedge(cfg.HedgeAfter),
		// Fleet metrics collection is always on for coordinators — with
		// no interval it scrapes on demand per /metrics/fleet request.
		shard.WithFleet(shard.FleetConfig{Interval: cfg.FleetScrape}),
	}
	if cfg.PlanCache != 0 {
		opts = append(opts, shard.WithPlanCache(cfg.PlanCache))
	}
	return opts
}

// buildHandler assembles the SPARQL handler for whichever of the
// roles the flags select. The returned coordinator and file topology
// are nil except in the coordinator modes (and the file topology only
// for -topology).
func buildHandler(cfg handlerConfig, reg *obs.Registry, opts []endpoint.Option) (*endpoint.Server, *shard.Coordinator, *shard.FileTopology, error) {
	shardOpts := cfg.shardOptions(reg)
	switch {
	case cfg.ShardSlot != "":
		i, n, err := parseShardSlot(cfg.ShardSlot)
		if err != nil {
			return nil, nil, nil, err
		}
		parts, err := buildPartitions(cfg.Data, cfg.Gen, cfg.ObsCount, n)
		if err != nil {
			return nil, nil, nil, err
		}
		st := parts[i]
		log.Printf("sparqld: serving shard %d/%d (%d triples) on %s/sparql (metrics on /metrics)",
			i, n, st.Len(), cfg.Addr)
		return cfg.storeServer(st, reg, opts), nil, nil, nil
	case cfg.Topology != "":
		ft := shard.NewFileTopology(cfg.Topology)
		coord, err := shard.NewDynamic(ft, remoteDialer, shardOpts...)
		if err != nil {
			return nil, nil, nil, err
		}
		log.Printf("sparqld: coordinating %d shards (replicas %v) from %s on %s/sparql (degraded=%v, metrics on /metrics)",
			coord.Shards(), coord.Replicas(), cfg.Topology, cfg.Addr, cfg.Degraded)
		client, stack := cfg.wrapServe(coord, reg)
		opts = append(opts, endpoint.WithReadiness(coord.Ready))
		opts = append(opts, cfg.fleetRoutes("coordinator", coord, stack, reg)...)
		return endpoint.NewClientServer(client, opts...), coord, ft, nil
	case cfg.Shards != "":
		groups, err := parseShards(cfg.Shards)
		if err != nil {
			return nil, nil, nil, err
		}
		dial, err := localDialer(groups, cfg.Data, cfg.Gen, cfg.ObsCount, cfg.Workers)
		if err != nil {
			return nil, nil, nil, err
		}
		// A static view through NewDynamic (rather than NewReplicated
		// over pre-built clients) keeps the replica URL specs on the
		// coordinator's view so fleet scraping can reach remote
		// replicas' /metrics.
		coord, err := shard.NewDynamic(shard.Static{View: shard.TopologyView{Groups: groups}}, dial, shardOpts...)
		if err != nil {
			return nil, nil, nil, err
		}
		log.Printf("sparqld: coordinating %d shards (replicas %v) on %s/sparql (degraded=%v, metrics on /metrics)",
			coord.Shards(), coord.Replicas(), cfg.Addr, cfg.Degraded)
		client, stack := cfg.wrapServe(coord, reg)
		opts = append(opts, endpoint.WithReadiness(coord.Ready))
		opts = append(opts, cfg.fleetRoutes("coordinator", coord, stack, reg)...)
		return endpoint.NewClientServer(client, opts...), coord, nil, nil
	default:
		st, err := buildStore(cfg.Data, cfg.Gen, cfg.ObsCount)
		if err != nil {
			return nil, nil, nil, err
		}
		stats := st.Stats()
		log.Printf("sparqld: serving %d triples (%d terms, %d predicates) on %s/sparql (metrics on /metrics)",
			stats.Triples, stats.Terms, stats.Predicates, cfg.Addr)
		return cfg.storeServer(st, reg, opts), nil, nil, nil
	}
}

// storeServer serves a local store: directly (the engine-embedded
// server) without serve-layer flags, or as an in-process client behind
// the serving stack with them. The wrapped form keeps the store gauge
// NewServer would have registered.
func (cfg handlerConfig) storeServer(st *store.Store, reg *obs.Registry, opts []endpoint.Option) *endpoint.Server {
	if !cfg.serving() {
		return endpoint.NewServer(st, opts...)
	}
	reg.GaugeFunc("re2xolap_store_triples", "Triples in the served store.",
		func() float64 { return float64(st.Len()) })
	client, stack := cfg.wrapServe(endpoint.NewInProcess(st, opts...), reg)
	opts = append(opts, cfg.fleetRoutes("single", nil, stack, reg)...)
	return endpoint.NewClientServer(client, opts...)
}

// openTraceSink opens the OTLP/JSON trace destination. Files are
// opened in append mode so restarts do not clobber earlier traces.
func openTraceSink(path string) (*obs.OTLPSink, error) {
	var w io.Writer
	if path == "-" {
		w = os.Stdout
	} else {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("trace export: %w", err)
		}
		w = f
	}
	return obs.NewOTLPSink(w, "sparqld"), nil
}

// newHTTPServer wraps the handler in the hardened http.Server.
// ReadHeaderTimeout bounds how long a client may dribble headers
// (Slowloris); WriteTimeout leaves headroom over the query deadline so
// slow result writes are bounded too.
func newHTTPServer(addr string, handler http.Handler, queryTimeout time.Duration) *http.Server {
	writeTimeout := 15 * time.Minute
	if queryTimeout > 0 {
		writeTimeout = queryTimeout + time.Minute
	}
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}

func buildStore(data, gen string, obs int) (*store.Store, error) {
	switch {
	case data != "" && gen != "":
		return nil, fmt.Errorf("-data and -gen are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(data, ".snap") {
			st, err := store.ReadSnapshot(f)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", data, err)
			}
			log.Printf("sparqld: loaded %d triples from snapshot %s", st.Len(), data)
			return st, nil
		}
		st := store.New()
		n, err := st.Load(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		log.Printf("sparqld: loaded %d triples from %s", n, data)
		return st, nil
	case gen != "":
		spec, err := presetByName(gen, obs)
		if err != nil {
			return nil, err
		}
		log.Printf("sparqld: generating %s with %d observations...", gen, obs)
		return spec.BuildStore()
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}

func presetByName(name string, obs int) (datagen.Spec, error) {
	switch name {
	case "eurostat":
		return datagen.EurostatLike(obs), nil
	case "production":
		return datagen.ProductionLike(obs), nil
	case "dbpedia":
		return datagen.DBpediaLike(obs), nil
	default:
		return datagen.Spec{}, fmt.Errorf("unknown preset %q (want eurostat, production, or dbpedia)", name)
	}
}

// Command sparqld serves an RDF dataset over the SPARQL 1.1 protocol
// (query via GET or POST, application/sparql-results+json responses),
// playing the role of the external triplestore in the paper's
// architecture:
//
//	sparqld -addr :8085 -data dataset.nt
//	sparqld -addr :8085 -gen eurostat -obs 50000
//
// Then point cmd/re2xolap (or any SPARQL client) at
// http://localhost:8085/sparql.
//
// One binary covers three roles:
//
//   - single node (default): serve the whole dataset;
//   - shard server (-shard i/n): serve only partition i of an n-way
//     subject-hash split of the dataset;
//   - coordinator (-shards N | -shards url,local,url): scatter-gather
//     queries over N shard backends, in-process, remote, or mixed,
//     with answers byte-identical to a single node over the union.
//
// Every flag can also come from a JSON config file (-config); flags
// given explicitly on the command line override the file.
//
// The server is hardened for untrusted traffic: per-request query
// deadlines (-query-timeout), in-flight limiting with 503 shedding
// (-max-inflight), panic recovery, Slowloris protection via
// ReadHeaderTimeout, and graceful shutdown on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/shard"
	"re2xolap/internal/store"
)

func main() {
	addr := flag.String("addr", ":8085", "listen address")
	data := flag.String("data", "", "N-Triples/Turtle file to load (.snap loads a binary snapshot)")
	gen := flag.String("gen", "", "generate a synthetic dataset instead: eurostat, production, dbpedia")
	obsCount := flag.Int("obs", 10000, "observations for -gen")
	queryTimeout := flag.Duration("query-timeout", 5*time.Minute, "per-request query execution deadline (0 disables)")
	maxInFlight := flag.Int("max-inflight", 64, "max concurrent requests before shedding with 503 (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 15*time.Second, "how long to wait for in-flight requests on shutdown")
	workers := flag.Int("workers", 0, "executor worker goroutines per query (0 = GOMAXPROCS, 1 = sequential)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this as JSON lines to stderr (0 disables)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	configPath := flag.String("config", "", "JSON config file with flag-name keys; explicit flags override it")
	shards := flag.String("shards", "", "coordinator mode: shard count, or comma list of shard /sparql URLs and the word 'local'")
	shardSlot := flag.String("shard", "", "shard-server mode: serve only partition i of n, as 'i/n'")
	degraded := flag.Bool("degraded", false, "coordinator: answer with partial results when shards fail (sets X-Re2xolap-Incomplete)")
	traceExport := flag.String("trace-export", "", "append per-request OTLP/JSON trace lines to this file ('-' for stdout)")
	debugQueries := flag.Int("debug-queries", 0, "keep the last N query profiles and serve them as JSON on /debug/queries (0 disables)")
	flag.Parse()

	if *configPath != "" {
		if err := applyConfigFile(flag.CommandLine, *configPath); err != nil {
			log.Fatalf("sparqld: %v", err)
		}
	}
	if *shards != "" && *shardSlot != "" {
		log.Fatalf("sparqld: -shards (coordinator) and -shard (shard server) are mutually exclusive")
	}

	// Metrics are always on — the registry costs a few atomic adds per
	// request and /metrics is how operators see inside the server.
	reg := obs.NewRegistry()
	opts := []endpoint.Option{
		endpoint.WithRegistry(reg),
		// Each query fans its joins and aggregations over this many
		// goroutines; -max-inflight bounds how many such queries run at
		// once, so total parallelism is workers x inflight.
		endpoint.WithWorkers(*workers),
	}
	if *slowQuery > 0 {
		opts = append(opts, endpoint.WithSlowQueryLog(obs.NewSlowLog(os.Stderr, *slowQuery)))
	}
	if *traceExport != "" {
		sink, err := openTraceSink(*traceExport)
		if err != nil {
			log.Fatalf("sparqld: %v", err)
		}
		opts = append(opts, endpoint.WithTraceExport(sink))
	}
	if *debugQueries > 0 {
		opts = append(opts, endpoint.WithQueryLog(obs.NewQueryRing(*debugQueries)))
	}

	handler, err := buildHandler(*shards, *shardSlot, *data, *gen, *obsCount, *workers, *degraded, *addr, reg, opts)
	if err != nil {
		log.Fatalf("sparqld: %v", err)
	}

	srv := newHTTPServer(*addr, handler, endpoint.HardenConfig{
		QueryTimeout: *queryTimeout,
		MaxInFlight:  *maxInFlight,
	}, *queryTimeout, *pprofOn)

	// Graceful shutdown: stop accepting on SIGINT/SIGTERM, then give
	// in-flight queries the grace period before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("sparqld: serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("sparqld: signal received, draining for up to %s...", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("sparqld: forced shutdown: %v", err)
			_ = srv.Close()
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("sparqld: serve: %v", err)
		}
		log.Printf("sparqld: shutdown complete")
	}
}

// buildHandler assembles the SPARQL handler for whichever of the
// three roles the flags select.
func buildHandler(shards, shardSlot, data, gen string, obsCount, workers int, degraded bool, addr string, reg *obs.Registry, opts []endpoint.Option) (*endpoint.Server, error) {
	switch {
	case shardSlot != "":
		i, n, err := parseShardSlot(shardSlot)
		if err != nil {
			return nil, err
		}
		parts, err := buildPartitions(data, gen, obsCount, n)
		if err != nil {
			return nil, err
		}
		st := parts[i]
		log.Printf("sparqld: serving shard %d/%d (%d triples) on %s/sparql (metrics on /metrics)",
			i, n, st.Len(), addr)
		return endpoint.NewServer(st, opts...), nil
	case shards != "":
		specs, err := parseShards(shards)
		if err != nil {
			return nil, err
		}
		backends, err := buildBackends(specs, data, gen, obsCount, workers)
		if err != nil {
			return nil, err
		}
		coord, err := shard.New(backends, shard.Config{
			Workers:  workers,
			Degraded: degraded,
			Registry: reg,
		})
		if err != nil {
			return nil, err
		}
		log.Printf("sparqld: coordinating %d shards on %s/sparql (degraded=%v, metrics on /metrics)",
			coord.Shards(), addr, degraded)
		return endpoint.NewClientServer(coord, opts...), nil
	default:
		st, err := buildStore(data, gen, obsCount)
		if err != nil {
			return nil, err
		}
		stats := st.Stats()
		log.Printf("sparqld: serving %d triples (%d terms, %d predicates) on %s/sparql (metrics on /metrics)",
			stats.Triples, stats.Terms, stats.Predicates, addr)
		return endpoint.NewServer(st, opts...), nil
	}
}

// openTraceSink opens the OTLP/JSON trace destination. Files are
// opened in append mode so restarts do not clobber earlier traces.
func openTraceSink(path string) (*obs.OTLPSink, error) {
	var w io.Writer
	if path == "-" {
		w = os.Stdout
	} else {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("trace export: %w", err)
		}
		w = f
	}
	return obs.NewOTLPSink(w, "sparqld"), nil
}

// newHTTPServer wraps the SPARQL handler in the hardened http.Server:
// the Harden middleware stack plus protocol-level timeouts.
// ReadHeaderTimeout bounds how long a client may dribble headers
// (Slowloris); WriteTimeout leaves headroom over the query deadline so
// slow result writes are bounded too.
func newHTTPServer(addr string, handler *endpoint.Server, cfg endpoint.HardenConfig, queryTimeout time.Duration, pprofOn bool) *http.Server {
	mux := handler.Routes(endpoint.RoutesConfig{Harden: cfg, Pprof: pprofOn})
	writeTimeout := 15 * time.Minute
	if queryTimeout > 0 {
		writeTimeout = queryTimeout + time.Minute
	}
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}

func buildStore(data, gen string, obs int) (*store.Store, error) {
	switch {
	case data != "" && gen != "":
		return nil, fmt.Errorf("-data and -gen are mutually exclusive")
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(data, ".snap") {
			st, err := store.ReadSnapshot(f)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", data, err)
			}
			log.Printf("sparqld: loaded %d triples from snapshot %s", st.Len(), data)
			return st, nil
		}
		st := store.New()
		n, err := st.Load(f)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", data, err)
		}
		log.Printf("sparqld: loaded %d triples from %s", n, data)
		return st, nil
	case gen != "":
		spec, err := presetByName(gen, obs)
		if err != nil {
			return nil, err
		}
		log.Printf("sparqld: generating %s with %d observations...", gen, obs)
		return spec.BuildStore()
	default:
		return nil, fmt.Errorf("one of -data or -gen is required")
	}
}

func presetByName(name string, obs int) (datagen.Spec, error) {
	switch name {
	case "eurostat":
		return datagen.EurostatLike(obs), nil
	case "production":
		return datagen.ProductionLike(obs), nil
	case "dbpedia":
		return datagen.DBpediaLike(obs), nil
	default:
		return datagen.Spec{}, fmt.Errorf("unknown preset %q (want eurostat, production, or dbpedia)", name)
	}
}

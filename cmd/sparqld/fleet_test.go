package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
)

// promGet scrapes one exposition endpoint.
func promGet(t *testing.T, u string) *obs.PromSnapshot {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", u, resp.StatusCode)
	}
	snap, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	return snap
}

// TestFleetEndToEnd stands up a 3-shard × 2-replica fleet of real
// shard servers plus a coordinator with SLO tracking over them, then
// exercises the whole observability surface: /metrics/fleet must be
// exactly the merge of the replicas' individual scrapes, must degrade
// to a stale-marked (still 200) view when a replica dies, /debug/slo
// must attribute the traffic, and the /fleet dashboard must render.
func TestFleetEndToEnd(t *testing.T) {
	const genName, obsN = "eurostat", 120
	const shardsN, replicasN = 3, 2

	var backends []*httptest.Server
	groups := make([]string, shardsN)
	for i := 0; i < shardsN; i++ {
		var reps []string
		for j := 0; j < replicasN; j++ {
			reg := obs.NewRegistry()
			h, _, _, err := buildHandler(handlerConfig{
				ShardSlot: fmt.Sprintf("%d/%d", i, shardsN),
				Gen:       genName, ObsCount: obsN, Addr: ":0",
			}, reg, []endpoint.Option{endpoint.WithRegistry(reg)})
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(h.Routes(endpoint.RoutesConfig{}))
			backends = append(backends, srv)
			reps = append(reps, srv.URL+"/sparql")
		}
		groups[i] = strings.Join(reps, "|")
	}
	t.Cleanup(func() {
		for _, s := range backends {
			s.Close()
		}
	})

	coordReg := obs.NewRegistry()
	coord, coordinator, _, err := buildHandler(handlerConfig{
		Shards: strings.Join(groups, ","),
		Addr:   ":0", SLO: "p99<250ms,err<1%",
	}, coordReg, []endpoint.Option{endpoint.WithRegistry(coordReg)})
	if err != nil {
		t.Fatal(err)
	}
	defer coordinator.Close()
	csrv := httptest.NewServer(coord.Routes(endpoint.RoutesConfig{}))
	defer csrv.Close()

	query := `SELECT ?p (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY ?p`
	for k := 0; k < 3; k++ {
		resp, err := http.PostForm(csrv.URL+"/sparql", url.Values{"query": {query}})
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", k, resp.StatusCode)
		}
	}

	// The federated view is the merge of the individual scrapes: the
	// fleet's ok-request total must equal the sum over every replica's
	// own /metrics. (No traffic flows between the two readings; the
	// fleet scrape itself is not a SPARQL protocol request.)
	const reqTotal = "re2xolap_server_requests_total"
	fleet := promGet(t, csrv.URL+"/metrics/fleet")
	var sum float64
	for _, b := range backends {
		v, _ := promGet(t, b.URL+"/metrics").Value(reqTotal, obs.L("outcome", "ok"))
		sum += v
	}
	if sum == 0 {
		t.Fatal("no traffic reached the shard servers")
	}
	if got, ok := fleet.Value(reqTotal, obs.L("outcome", "ok")); !ok || got != sum {
		t.Fatalf("fleet ok-requests = %v (present=%v), individual scrapes sum to %v", got, ok, sum)
	}
	for i := 0; i < shardsN; i++ {
		for j := 0; j < replicasN; j++ {
			inst := obs.L("instance", fmt.Sprintf("shard%d/replica%d", i, j))
			if up, ok := fleet.Value("re2xolap_fleet_instance_up", inst); !ok || up != 1 {
				t.Errorf("shard%d/replica%d: up = %v (present=%v), want 1", i, j, up, ok)
			}
		}
	}

	// Kill shard 0's preferred replica: the fleet view must stay 200,
	// mark the dead instance stale, and keep its last-good counters in
	// the totals rather than letting them vanish.
	backends[0].Close()
	degraded := promGet(t, csrv.URL+"/metrics/fleet")
	if up, _ := degraded.Value("re2xolap_fleet_instance_up", obs.L("instance", "shard0/replica0")); up != 0 {
		t.Fatalf("dead replica still reported up = %v", up)
	}
	if got, _ := degraded.Value(reqTotal, obs.L("outcome", "ok")); got != sum {
		t.Fatalf("degraded fleet ok-requests = %v, want last-good-retaining %v", got, sum)
	}

	// /debug/slo attributes the coordinator traffic to the default
	// tenant under both configured objectives.
	resp, err := http.Get(csrv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slo: status %d", resp.StatusCode)
	}
	var rep struct {
		Objectives []struct {
			Name string `json:"name"`
		} `json:"objectives"`
		Tenants map[string]struct {
			Queries int64 `json:"queries"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %+v, want p99 and err", rep.Objectives)
	}
	if got := rep.Tenants["default"].Queries; got != 3 {
		t.Fatalf("default tenant queries = %d, want 3", got)
	}

	// The dashboard renders every section for a coordinator with SLOs.
	dresp, err := http.Get(csrv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	body, err := io.ReadAll(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/fleet: status %d", dresp.StatusCode)
	}
	for _, want := range []string{
		"Fleet — coordinator", "Topology health", "Per-shard latency",
		"Serving stack", "Tenant SLO burn rates",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/fleet missing %q", want)
		}
	}
}

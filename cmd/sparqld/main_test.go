package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	src := `@prefix ex: <http://ex.org/> .
ex:obs1 ex:dim ex:de ; ex:value 10 .
ex:obs2 ex:dim ex:fr ; ex:value 20 .
`
	if _, err := st.Load(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewServerHardening(t *testing.T) {
	handler := endpoint.NewServer(testStore(t), endpoint.WithWorkers(4))
	mux := handler.Routes(endpoint.RoutesConfig{Harden: endpoint.HardenConfig{
		QueryTimeout: time.Minute,
		MaxInFlight:  4,
	}})
	srv := newHTTPServer(":0", mux, time.Minute)
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set (Slowloris protection missing)")
	}
	if srv.WriteTimeout < time.Minute {
		t.Errorf("WriteTimeout = %s, want at least the query deadline", srv.WriteTimeout)
	}

	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	q := url.QueryEscape(`SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)
	resp, err = ts.Client().Get(ts.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res, err := endpoint.DecodeResults(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestBuildStoreErrors(t *testing.T) {
	if _, err := buildStore("x.nt", "eurostat", 10); err == nil {
		t.Error("mutually exclusive flags accepted")
	}
	if _, err := buildStore("", "", 10); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildStore("", "nope", 10); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := presetByName("production", 5); err != nil {
		t.Errorf("production preset: %v", err)
	}
}

func TestSwapHandlerLoadingSequence(t *testing.T) {
	sw := &swapHandler{}
	sw.Store(loadingHandler())
	ts := httptest.NewServer(sw)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/livez"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/livez while loading = %d %q", code, body)
	}
	for _, path := range []string{"/healthz", "/readyz", "/sparql?query=x"} {
		code, body := get(path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s while loading = %d, want 503", path, code)
		}
		if !strings.Contains(body, "store loading") {
			t.Fatalf("%s body = %q, want a loading reason", path, body)
		}
	}

	// Swap in the real handler: routes come alive.
	handler := endpoint.NewServer(testStore(t))
	sw.Store(handler.Routes(endpoint.RoutesConfig{}))
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz after swap = %d", code)
	}
}

func TestBuildHandlerTopologyFile(t *testing.T) {
	// A topology file naming remote replicas builds a dynamic
	// coordinator; "local" specs are rejected with a clear error.
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(path, []byte(`{"shards": [["local"]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := buildHandler(handlerConfig{Topology: path, Addr: ":0"}, obs.NewRegistry(), nil); err == nil ||
		!strings.Contains(err.Error(), "local") {
		t.Fatalf("local spec in topology file: err = %v, want rejection", err)
	}

	// Remote specs dial fine (no connection is made at build time).
	if err := os.WriteFile(path, []byte(`{"shards": [["http://a:1/sparql","http://b:2/sparql"],["http://c:3/sparql"]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, coord, ft, err := buildHandler(handlerConfig{Topology: path, Addr: ":0"}, obs.NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil || coord == nil || ft == nil {
		t.Fatal("topology mode must return server, coordinator, and file topology")
	}
	defer coord.Close()
	if coord.Shards() != 2 {
		t.Fatalf("shards = %d, want 2", coord.Shards())
	}
	if reps := coord.Replicas(); len(reps) != 2 || reps[0] != 2 || reps[1] != 1 {
		t.Fatalf("replicas = %v, want [2 1]", reps)
	}
}

package main

import (
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"re2xolap/internal/endpoint"
	"re2xolap/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	src := `@prefix ex: <http://ex.org/> .
ex:obs1 ex:dim ex:de ; ex:value 10 .
ex:obs2 ex:dim ex:fr ; ex:value 20 .
`
	if _, err := st.Load(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewServerHardening(t *testing.T) {
	handler := endpoint.NewServer(testStore(t), endpoint.WithWorkers(4))
	srv := newHTTPServer(":0", handler, endpoint.HardenConfig{
		QueryTimeout: time.Minute,
		MaxInFlight:  4,
	}, time.Minute, false)
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set (Slowloris protection missing)")
	}
	if srv.WriteTimeout < time.Minute {
		t.Errorf("WriteTimeout = %s, want at least the query deadline", srv.WriteTimeout)
	}

	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	q := url.QueryEscape(`SELECT ?v WHERE { ?o <http://ex.org/value> ?v . }`)
	resp, err = ts.Client().Get(ts.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res, err := endpoint.DecodeResults(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestBuildStoreErrors(t *testing.T) {
	if _, err := buildStore("x.nt", "eurostat", 10); err == nil {
		t.Error("mutually exclusive flags accepted")
	}
	if _, err := buildStore("", "", 10); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildStore("", "nope", 10); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := presetByName("production", 5); err != nil {
		t.Errorf("production preset: %v", err)
	}
}

// Command re2xolap is the interactive example-driven explorer: the
// Algorithm 2 loop as a terminal REPL.
//
//	re2xolap -gen eurostat -obs 20000
//	re2xolap -data dataset.nt -class http://purl.org/linked-data/cube#Observation
//	re2xolap -endpoint http://localhost:8085/sparql -class http://...#Observation
//
// Session commands:
//
//	example <kw> | <kw> | ...   reverse-engineer queries from examples
//	example <kws> -- <negative kws>   ... rejecting negative examples
//	contrast <kws> vs <kws>     compare the measures of two examples
//	rank                        rank the last listed refinements
//	pick <n>                    execute candidate query n
//	show [n]                    print current results (first n rows)
//	dis | topk | perc | sim     list refinements of the chosen method
//	apply <n>                   execute refinement n
//	back                        backtrack to the previous query
//	profile                     print the virtual schema graph
//	profile <query|current>     run under the runtime profiler (EXPLAIN ANALYZE)
//	sparql <query>              run a raw SPARQL query
//	help, quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"re2xolap/internal/core"
	"re2xolap/internal/datagen"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/qb"
	"re2xolap/internal/refine"
	"re2xolap/internal/session"
	"re2xolap/internal/store"
	"re2xolap/internal/vgraph"
)

func main() {
	endpointURL := flag.String("endpoint", "", "remote SPARQL endpoint URL")
	data := flag.String("data", "", "local N-Triples/Turtle file")
	gen := flag.String("gen", "", "generate a preset dataset: eurostat, production, dbpedia")
	obsCount := flag.Int("obs", 10000, "observations for -gen")
	class := flag.String("class", qb.Observation, "observation class IRI")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-query deadline against a remote endpoint (0 disables)")
	retries := flag.Int("retries", 4, "retries per query on transient endpoint failures")
	breaker := flag.Int("breaker", 5, "consecutive failures before the circuit breaker trips (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped breaker stays open before probing")
	maxInFlight := flag.Int("max-inflight", 8, "max concurrent queries to the remote endpoint (0 unlimited)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this as JSON lines to stderr (0 disables)")
	flag.Parse()

	policy := endpoint.Policy{
		Timeout:          *timeout,
		MaxRetries:       *retries,
		BaseBackoff:      100 * time.Millisecond,
		MaxBackoff:       10 * time.Second,
		Jitter:           0.5,
		BreakerThreshold: *breaker,
		BreakerCooldown:  *breakerCooldown,
		MaxInFlight:      *maxInFlight,
	}
	// Metrics are always collected (the "stats" REPL command prints
	// them); the slow-query log is opt-in.
	reg := obs.NewRegistry()
	copts := []endpoint.Option{endpoint.WithRegistry(reg)}
	if *slowQuery > 0 {
		copts = append(copts, endpoint.WithSlowQueryLog(obs.NewSlowLog(os.Stderr, *slowQuery)))
	}
	client, cfg, err := buildClient(*endpointURL, *data, *gen, *obsCount, *class, policy, copts)
	if err != nil {
		log.Fatalf("re2xolap: %v", err)
	}
	ctx := context.Background()
	fmt.Println("bootstrapping virtual schema graph...")
	g, err := vgraph.Bootstrap(ctx, client, cfg)
	if err != nil {
		log.Fatalf("re2xolap: bootstrap: %v", err)
	}
	fmt.Print(g.String())
	engine := core.NewEngine(client, g, cfg)
	engine.Instrument(reg)
	repl(ctx, engine, g, client, reg, os.Stdin, os.Stdout)
}

func buildClient(endpointURL, data, gen string, obsCount int, class string, policy endpoint.Policy, copts []endpoint.Option) (endpoint.Client, qb.Config, error) {
	cfg := qb.Config{ObservationClass: class}
	switch {
	case endpointURL != "":
		// A remote endpoint can flake: wrap the HTTP client in the
		// resilience decorator (deadlines, retries, circuit breaker).
		// The metrics and slow-query options attach to the outer
		// decorator so every query is observed exactly once.
		return endpoint.NewResilient(endpoint.NewHTTPClient(endpointURL),
			append([]endpoint.Option{endpoint.WithPolicy(policy)}, copts...)...), cfg, nil
	case data != "":
		f, err := os.Open(data)
		if err != nil {
			return nil, cfg, err
		}
		defer f.Close()
		st := store.New()
		if _, err := st.Load(f); err != nil {
			return nil, cfg, err
		}
		return endpoint.NewInProcess(st, copts...), cfg, nil
	case gen != "":
		var spec datagen.Spec
		switch gen {
		case "eurostat":
			spec = datagen.EurostatLike(obsCount)
		case "production":
			spec = datagen.ProductionLike(obsCount)
		case "dbpedia":
			spec = datagen.DBpediaLike(obsCount)
		default:
			return nil, cfg, fmt.Errorf("unknown preset %q", gen)
		}
		st, err := spec.BuildStore()
		if err != nil {
			return nil, cfg, err
		}
		return endpoint.NewInProcess(st, copts...), spec.Config(), nil
	default:
		return nil, cfg, fmt.Errorf("one of -endpoint, -data, or -gen is required")
	}
}

// repl drives the interactive loop, reading commands from in and
// writing to out (parameterized for tests).
func repl(ctx context.Context, engine *core.Engine, g *vgraph.Graph, client endpoint.Client, reg *obs.Registry, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sess := session.New(engine, g)
	var candidates []core.Candidate
	var options []refine.Refinement

	// Per-command tracing: qctx derives the command's context (with a
	// fresh span tree when tracing is on) and showTrace prints the tree
	// after the command's own output, at the top of the next iteration.
	traceOn := false
	var lastTrace *obs.Trace
	qctx := func(base context.Context, name string) context.Context {
		if !traceOn {
			return base
		}
		lastTrace = obs.NewTrace(name)
		return obs.ContextWith(base, lastTrace.Root())
	}
	showTrace := func() {
		if lastTrace == nil {
			return
		}
		lastTrace.Root().End()
		fmt.Fprint(out, lastTrace.String())
		lastTrace = nil
	}

	fmt.Fprintln(out, `type "help" for commands`)
	for {
		showTrace()
		fmt.Fprint(out, "re2xolap> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			printHelp(out)
		case "trace":
			traceOn = !traceOn
			if traceOn {
				fmt.Fprintln(out, "trace on: query commands print their span tree")
			} else {
				fmt.Fprintln(out, "trace off")
			}
		case "stats":
			if err := reg.WriteProm(out); err != nil {
				fmt.Fprintln(out, "error:", err)
			}
			if rc, ok := client.(*endpoint.ResilientClient); ok {
				s := rc.Stats()
				fmt.Fprintf(out, "# resilient: %d queries, %d retries, %d breaker trips, breaker %s\n",
					s.Queries, s.Retries, s.BreakerTrips, rc.State())
			}
		case "profile":
			if rest != "" {
				// profile <query|current>: run under the runtime profiler
				// and print the EXPLAIN ANALYZE operator tree.
				if rest == "current" {
					cur := sess.Current()
					if cur == nil {
						fmt.Fprintln(out, "no active query")
						continue
					}
					rest = cur.Query.ToSPARQL()
				}
				ip, ok := client.(*endpoint.InProcess)
				if !ok {
					fmt.Fprintln(out, "profile requires an in-process store (-data or -gen)")
					continue
				}
				_, p, err := ip.Engine.Profile(qctx(ctx, "profile"), rest)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				fmt.Fprint(out, p.String())
				continue
			}
			fmt.Fprint(out, g.String())
			if p, err := engine.Profile(qctx(ctx, "profile")); err == nil {
				fmt.Fprint(out, p.String())
			}
		case "example":
			posPart, negPart, hasNeg := strings.Cut(rest, "--")
			items := splitItems(posPart)
			if len(items) == 0 {
				fmt.Fprintln(out, "usage: example <kw> | <kw> | ... [-- <negative kw> | ...]")
				continue
			}
			var cands []core.Candidate
			var err error
			if hasNeg {
				var negatives []core.ExampleTuple
				for _, n := range splitItems(negPart) {
					negatives = append(negatives, core.Keywords(n))
				}
				cands, err = engine.SynthesizeWithNegatives(qctx(ctx, "example"),
					[]core.ExampleTuple{core.Keywords(items...)}, negatives)
			} else {
				cands, err = engine.Synthesize(qctx(ctx, "example"), core.Keywords(items...))
			}
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			candidates = core.RankCandidates(cands)
			cands = candidates
			if len(cands) == 0 {
				fmt.Fprintln(out, "no valid interpretation; try other examples")
				continue
			}
			for i, c := range cands {
				fmt.Fprintf(out, "  [%d] %s\n", i, c.Query.Description)
			}
			fmt.Fprintln(out, `pick one with "pick <n>"`)
		case "pick":
			i, err := strconv.Atoi(rest)
			if err != nil || i < 0 || i >= len(candidates) {
				fmt.Fprintln(out, "usage: pick <n> after an example command")
				continue
			}
			rs, err := sess.Start(qctx(ctx, "pick"), candidates[i].Query)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			printResults(out, rs, 15)
		case "show":
			cur := sess.Current()
			if cur == nil {
				fmt.Fprintln(out, "no active query")
				continue
			}
			n := 15
			if rest != "" {
				if v, err := strconv.Atoi(rest); err == nil {
					n = v
				}
			}
			fmt.Fprintln(out, cur.Query.Description)
			printResults(out, cur.Results, n)
		case "dis", "topk", "perc", "sim", "cluster", "rollup":
			kind := map[string]refine.Kind{
				"dis": refine.KindDisaggregate, "topk": refine.KindTopK,
				"perc": refine.KindPercentile, "sim": refine.KindSimilarity,
				"cluster": refine.KindCluster, "rollup": refine.KindRollUp,
			}[cmd]
			opts, err := sess.Options(ctx, kind)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			options = opts
			if len(opts) == 0 {
				fmt.Fprintln(out, "no refinements available")
				continue
			}
			for i, r := range opts {
				fmt.Fprintf(out, "  [%d] %s\n", i, r.Why)
			}
			fmt.Fprintln(out, `apply one with "apply <n>"`)
		case "apply":
			i, err := strconv.Atoi(rest)
			if err != nil || i < 0 || i >= len(options) {
				fmt.Fprintln(out, "usage: apply <n> after a refinement command")
				continue
			}
			rs, err := sess.Apply(qctx(ctx, "apply"), options[i])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			printResults(out, rs, 15)
		case "contrast":
			aPart, bPart, ok := strings.Cut(rest, " vs ")
			if !ok {
				fmt.Fprintln(out, "usage: contrast <kw> | <kw> vs <kw> | <kw>")
				continue
			}
			a, bb := splitItems(aPart), splitItems(bPart)
			cs, err := engine.ContrastSets(qctx(ctx, "contrast"), core.Keywords(a...), core.Keywords(bb...))
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			if len(cs) == 0 {
				fmt.Fprintln(out, "no shared interpretation")
				continue
			}
			for _, c := range cs {
				fmt.Fprintln(out, c.Query.Description)
				for _, r := range c.Rows {
					fmt.Fprintf(out, "  %-24s A=%-12.1f B=%-12.1f ratio=%.2f\n", r.Column, r.A, r.B, r.Ratio)
				}
			}
		case "rank":
			cur := sess.Current()
			if cur == nil || len(options) == 0 {
				fmt.Fprintln(out, "list refinements first (dis/topk/perc/sim)")
				continue
			}
			scored := refine.Rank(cur.Results, options)
			options = options[:0]
			for i, sc := range scored {
				options = append(options, sc.Refinement)
				fmt.Fprintf(out, "  [%d] %.2f %s\n", i, sc.Score, sc.Why)
			}
		case "save":
			if rest == "" {
				fmt.Fprintln(out, "usage: save <file.json>")
				continue
			}
			if sess.Current() == nil {
				fmt.Fprintln(out, "no exploration to save")
				continue
			}
			f, err := os.Create(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			err = sess.WriteJSON(f)
			f.Close()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "saved %d steps to %s\n", sess.Depth(), rest)
		case "back":
			if sess.Backtrack() {
				fmt.Fprintln(out, "back to:", sess.Current().Query.Description)
			} else {
				fmt.Fprintln(out, "nothing to backtrack")
			}
		case "explain":
			if rest == "" {
				fmt.Fprintln(out, "usage: explain <query> (or: explain current)")
				continue
			}
			if rest == "current" {
				cur := sess.Current()
				if cur == nil {
					fmt.Fprintln(out, "no active query")
					continue
				}
				rest = cur.Query.ToSPARQL()
			}
			ip, ok := client.(*endpoint.InProcess)
			if !ok {
				fmt.Fprintln(out, "explain requires an in-process store (-data or -gen)")
				continue
			}
			txt, err := ip.Engine.ExplainString(rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, txt)
		case "sparql":
			if rest == "" {
				fmt.Fprintln(out, "usage: sparql <query>")
				continue
			}
			res, err := client.Query(qctx(ctx, "sparql"), rest)
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprint(out, res.String())
		default:
			fmt.Fprintf(out, "unknown command %q; type help\n", cmd)
		}
	}
}

// splitItems splits "a | b | c" into trimmed non-empty items.
func splitItems(s string) []string {
	var out []string
	for _, part := range strings.Split(s, "|") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printHelp(out io.Writer) {
	fmt.Fprintln(out, `commands:
  example <kw> | <kw> ...  reverse-engineer analytical queries from examples
  example <kws> -- <kws>   synthesis with negative examples
  contrast <kws> vs <kws>  compare the measures of two example sets
  rank                     rank the last listed refinements
  pick <n>                 execute candidate n
  show [rows]              print current results
  dis                      list disaggregation (drill-down) refinements
  topk                     list top-k subset refinements
  perc                     list percentile subset refinements
  sim                      list similarity-search refinements
  cluster                  list clustering-based refinements
  rollup                   list roll-up (re-aggregate) refinements
  apply <n>                execute refinement n
  back                     backtrack to the previous query
  save <file.json>         export the exploration history
  profile                  print the virtual schema graph
  profile <query|current>  run a query under the runtime profiler (EXPLAIN ANALYZE)
  sparql <query>           run raw SPARQL
  explain <query|current>  show the query plan
  trace                    toggle per-command query tracing
  stats                    print collected metrics (Prometheus text)
  quit`)
}

func printResults(out io.Writer, rs *core.ResultSet, limit int) {
	q := rs.Query
	for _, d := range q.Dims {
		fmt.Fprintf(out, "%-26s | ", d.Level.String())
	}
	for _, a := range q.Aggregates {
		fmt.Fprintf(out, "%-14s | ", a.OutVar)
	}
	fmt.Fprintln(out)
	for i, t := range rs.Tuples {
		if i >= limit {
			fmt.Fprintf(out, "... (%d more rows)\n", rs.Len()-limit)
			break
		}
		for _, m := range t.Dims {
			fmt.Fprintf(out, "%-26s | ", short(m.Value))
		}
		for _, a := range q.Aggregates {
			fmt.Fprintf(out, "%-14.1f | ", t.Measures[a.OutVar])
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "%d tuples; example-matching tuples: %d\n", rs.Len(), len(rs.ExampleTuples()))
}

func short(v string) string {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == '/' || v[i] == '#' {
			return v[i+1:]
		}
	}
	return v
}

package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"re2xolap/internal/core"
	"re2xolap/internal/endpoint"
	"re2xolap/internal/obs"
	"re2xolap/internal/testkg"
	"re2xolap/internal/vgraph"
)

// runScript drives the REPL with a scripted command sequence and
// returns its output.
func runScript(t *testing.T, script string) string {
	t.Helper()
	st := testkg.Build(t, nil)
	reg := obs.NewRegistry()
	client := endpoint.NewInProcess(st, endpoint.WithRegistry(reg))
	g, err := vgraph.Bootstrap(context.Background(), client, testkg.Config())
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(client, g, testkg.Config())
	engine.Instrument(reg)
	var out strings.Builder
	repl(context.Background(), engine, g, client, reg, strings.NewReader(script), &out)
	return out.String()
}

func TestREPLWorkflow(t *testing.T) {
	out := runScript(t, `help
example Germany | 2014
pick 0
show
dis
rank
apply 0
topk
back
profile
quit
`)
	for _, want := range []string{
		"commands:",
		"[0] Return SUM/MIN/MAX/AVG(Num Applicants)",
		"tuples; example-matching tuples:",
		"disaggregate by",
		"virtual schema graph:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestREPLContrastAndNegatives(t *testing.T) {
	out := runScript(t, `contrast Germany vs France
example Germany -- China
quit
`)
	if !strings.Contains(out, "ratio=") {
		t.Errorf("contrast output missing:\n%s", out)
	}
	// With negative China, only the destination reading survives: the
	// candidate listing has a [0] but no [1].
	if !strings.Contains(out, "[0] Return SUM/MIN/MAX/AVG(Num Applicants)") {
		t.Errorf("negative synthesis output missing:\n%s", out)
	}
	if strings.Contains(out, "  [1] ") {
		t.Errorf("origin reading not rejected:\n%s", out)
	}
}

func TestREPLSPARQLAndErrors(t *testing.T) {
	out := runScript(t, `sparql SELECT (COUNT(?o) AS ?n) WHERE { ?o a <http://ex.org/Observation> . }
sparql NOT A QUERY
pick 9
apply 0
bogus
example
quit
`)
	if !strings.Contains(out, "11") { // 11 observations in the fixture
		t.Errorf("count missing:\n%s", out)
	}
	for _, want := range []string{"error:", "usage: pick", "usage: apply", "unknown command", "usage: example"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestREPLTraceAndStats(t *testing.T) {
	out := runScript(t, `trace
example Germany | 2014
pick 0
trace
stats
quit
`)
	// With tracing on, the example command prints its span tree: spans
	// for the tagged endpoint queries with engine phases nested under
	// them.
	for _, want := range []string{
		"trace on", "trace off",
		"example", "step=keyword-search", "sparql",
		`re2xolap_core_step_queries_total{step="keyword-search"}`,
		`re2xolap_endpoint_queries_total{client="inprocess"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestBuildClientErrors(t *testing.T) {
	p := endpoint.DefaultPolicy()
	if _, _, err := buildClient("", "", "", 0, "http://c", p, nil); err == nil {
		t.Error("no source accepted")
	}
	if _, _, err := buildClient("", "", "nope", 10, "http://c", p, nil); err == nil {
		t.Error("bad preset accepted")
	}
	if _, _, err := buildClient("", "/nonexistent/file.nt", "", 0, "http://c", p, nil); err == nil {
		t.Error("missing file accepted")
	}
	c, _, err := buildClient("http://example.org/sparql", "", "", 0, "http://c", p, nil)
	if err != nil || c == nil {
		t.Fatal("http client not built")
	}
	// The remote path must come back wrapped in the resilience layer.
	rc, ok := c.(*endpoint.ResilientClient)
	if !ok {
		t.Fatalf("remote client = %T, want *endpoint.ResilientClient", c)
	}
	if _, ok := rc.Unwrap().(*endpoint.HTTPClient); !ok {
		t.Errorf("wrapped client = %T, want *endpoint.HTTPClient", rc.Unwrap())
	}
}

func TestSplitItems(t *testing.T) {
	got := splitItems(" a | b|  c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitItems = %v", got)
	}
	if got := splitItems("  "); got != nil {
		t.Errorf("blank input = %v", got)
	}
}

func TestREPLExplain(t *testing.T) {
	out := runScript(t, `explain SELECT ?c WHERE { ?o <http://ex.org/origin> ?c . }
example Germany | 2014
pick 0
explain current
explain
quit
`)
	if !strings.Contains(out, "seed scan") {
		t.Errorf("explain output missing:\n%s", out)
	}
	if !strings.Contains(out, "SELECT with grouping") {
		t.Errorf("explain current missing:\n%s", out)
	}
	if !strings.Contains(out, "usage: explain") {
		t.Errorf("usage missing:\n%s", out)
	}
}

func TestREPLSave(t *testing.T) {
	path := t.TempDir() + "/session.json"
	out := runScript(t, `example Germany
pick 0
save `+path+`
save
quit
`)
	if !strings.Contains(out, "saved 1 steps") {
		t.Errorf("save output:\n%s", out)
	}
	if !strings.Contains(out, "usage: save") {
		t.Errorf("usage missing:\n%s", out)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"sparql"`) {
		t.Errorf("exported file:\n%s", b)
	}
}

// Command experiments regenerates every table and figure of the
// paper's evaluation (Section 7) over the synthetic datasets:
//
//	experiments -exp all -scale small
//	experiments -exp fig7 -scale medium -seed 7
//
// Experiments: table2, table3, fig6, fig7, fig8, fig8c, fig9, fig10,
// or all. Scales: small (2k observations), medium (20–50k), large
// (100–500k). See EXPERIMENTS.md for the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"re2xolap/internal/bench"
	"re2xolap/internal/endpoint"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table2, table3, fig6, fig7, fig8, fig8c, fig9, fig10")
	scaleName := flag.String("scale", "small", "dataset scale: small, medium, large")
	seed := flag.Int64("seed", 7, "workload random seed")
	perSize := flag.Int("persize", 3, "examples per input size for fig8/fig9")
	csvDir := flag.String("csv", "", "also write per-figure CSV data files to this directory")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline for the harness (0 disables the resilience wrapper)")
	retries := flag.Int("retries", 2, "retries per query when -query-timeout enables the resilience wrapper")
	workers := flag.Int("workers", 0, "worker goroutines for query execution and synthesis (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	var policy *endpoint.Policy
	if *queryTimeout > 0 {
		p := endpoint.DefaultPolicy()
		p.Timeout = *queryTimeout
		p.MaxRetries = *retries
		policy = &p
	}
	if err := run(*exp, *scaleName, *seed, *perSize, *csvDir, policy, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp, scaleName string, seed int64, perSize int, csvDir string, policy *endpoint.Policy, workers int) error {
	var scale bench.Scale
	switch scaleName {
	case "small":
		scale = bench.ScaleSmall
	case "medium":
		scale = bench.ScaleMedium
	case "large":
		scale = bench.ScaleLarge
	default:
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	w := os.Stdout

	fmt.Fprintf(w, "preparing datasets at scale %q (eurostat=%d production=%d dbpedia=%d observations)...\n",
		scaleName, scale.Eurostat, scale.Production, scale.DBpedia)
	var datasets []*bench.Dataset
	for _, spec := range scale.Specs() {
		d, err := bench.PrepareWithPolicy(spec, policy)
		if err != nil {
			return err
		}
		// One knob drives both layers: the in-process SPARQL executor
		// and the synthesis engine's validation pool.
		d.Client.Engine.Exec.Workers = workers
		d.Engine.Workers = workers
		fmt.Fprintf(w, "  %s: %d triples, bootstrap %s\n", spec.Name, d.Store.Len(), d.BootstrapTime.Round(1000000))
		datasets = append(datasets, d)
	}
	fmt.Fprintln(w)

	eurostat := datasets[0]
	section := func(name string, f func() error) error {
		if !all && !want[name] {
			return nil
		}
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(w)
		return nil
	}
	if err := section("table2", func() error { return bench.RunTable2(w, eurostat) }); err != nil {
		return err
	}
	if err := section("table3", func() error { return bench.RunTable3(w, datasets) }); err != nil {
		return err
	}
	if csvDir != "" && (all || want["table3"]) {
		if err := bench.ExportTable3CSV(csvDir, datasets); err != nil {
			return err
		}
	}
	if err := section("fig6", func() error { return bench.RunFig6(w, datasets) }); err != nil {
		return err
	}
	if csvDir != "" && (all || want["fig6"]) {
		if err := bench.ExportFig6CSV(csvDir, datasets); err != nil {
			return err
		}
	}
	if err := section("fig7", func() error { return bench.RunFig7(w, datasets, seed) }); err != nil {
		return err
	}
	if csvDir != "" && (all || want["fig7"]) {
		rows, err := bench.CollectFig7(datasets, seed)
		if err != nil {
			return err
		}
		if err := bench.ExportFig7CSV(csvDir, rows); err != nil {
			return err
		}
	}
	if all || want["fig8"] || want["fig9"] {
		metrics, err := bench.CollectWorkflow(datasets, seed, perSize)
		if err != nil {
			return fmt.Errorf("fig8/fig9: %w", err)
		}
		if all || want["fig8"] {
			bench.RunFig8(w, metrics)
			fmt.Fprintln(w)
		}
		if all || want["fig9"] {
			bench.RunFig9(w, metrics)
			fmt.Fprintln(w)
		}
		if csvDir != "" {
			if err := bench.ExportFig89CSV(csvDir, metrics); err != nil {
				return err
			}
		}
	}
	if err := section("fig8c", func() error { return bench.RunFig8c(w, eurostat, seed) }); err != nil {
		return err
	}
	if err := section("fig10", func() error { return bench.RunFig10(w, eurostat) }); err != nil {
		return err
	}
	// The step tables attribute the whole run's endpoint-query cost to
	// the workflow steps that issued it (keyword-search, membership-*,
	// witness, refine:*, ...), one table per dataset.
	bench.WriteStepTables(w, datasets)
	return nil
}

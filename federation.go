package re2xolap

import (
	"re2xolap/internal/obs"
	"re2xolap/internal/shard"
)

// Federation surface: a scatter-gather coordinator over subject-hash
// partitioned shards, usable anywhere a Client is (Bootstrap,
// NewSession, QueryX). The coordinator classifies each query into a
// plan class — colocated, partial_agg, bound_join, or gather — and
// reports it in QueryMeta.Plan along with per-shard accounting.
type (
	// CoordinatorClient is the scatter-gather federation client. It
	// implements Client and QuerierX; results are byte-identical to a
	// single node over the union of the partitions.
	CoordinatorClient = shard.Coordinator
	// ShardTopology names the replica endpoints behind a coordinator:
	// one ordered group of replica specs per logical shard.
	ShardTopology = shard.Topology
	// ShardTopologyView is one resolved topology.
	ShardTopologyView = shard.TopologyView
	// ShardOption configures NewCoordinatorClient (see WithHedge,
	// WithHealth, WithDegraded, WithPlanCache, WithBoundJoinChunk,
	// WithShardWorkers, WithShardRegistry, WithShardPolicy).
	ShardOption = shard.Option
	// ShardConfig is the struct-literal coordinator configuration.
	//
	// Deprecated: kept one release as a migration adapter for
	// WithShardConfig; compose the individual ShardOption values
	// instead.
	ShardConfig = shard.Config
	// ShardHealthConfig configures the background replica prober.
	ShardHealthConfig = shard.HealthConfig
	// ShardCall is the per-shard accounting of one federated query
	// (rows, wall time, attempts, retries, failovers), reported in
	// QueryMeta.Shards.
	ShardCall = obs.ShardCall
	// ShardDialer turns a replica spec from a ShardTopology into a
	// Client.
	ShardDialer = shard.Dialer
	// ShardPartitioner is the subject-hash partitioner; data split
	// with it satisfies the coordinator's colocation contract.
	ShardPartitioner = shard.Partitioner
)

// Coordinator constructor options, re-exported under clash-free names
// (WithShardWorkers vs the endpoint-level WithWorkers, and so on).
var (
	// WithHedge hedges slow shard calls after the given budget.
	WithHedge = shard.WithHedge
	// WithHealth enables the background replica prober.
	WithHealth = shard.WithHealth
	// WithDegraded serves partial results when shards fail, marking
	// the answer Incomplete instead of erroring.
	WithDegraded = shard.WithDegraded
	// WithPlanCache sizes the coordinator's LRU plan cache; <= 0
	// disables it.
	WithPlanCache = shard.WithPlanCache
	// WithBoundJoinChunk caps the VALUES rows shipped per bound-join
	// fetch query.
	WithBoundJoinChunk = shard.WithBoundJoinChunk
	// WithShardWorkers bounds the coordinator's scatter concurrency.
	WithShardWorkers = shard.WithWorkers
	// WithShardRegistry wires coordinator metrics into a Registry.
	WithShardRegistry = shard.WithRegistry
	// WithShardPolicy sets the per-replica resilience policy.
	WithShardPolicy = shard.WithPolicy
	// WithShardConfig applies a whole ShardConfig bag at once.
	//
	// Deprecated: compose the individual options instead.
	WithShardConfig = shard.WithConfig

	// NewFileShardTopology reads the topology from a JSON file and
	// re-resolves it on CoordinatorClient.Reload.
	NewFileShardTopology = shard.NewFileTopology
)

// NewCoordinatorClient builds a federation coordinator over the given
// topology. URL topologies (ShardURLs, NewFileShardTopology) are
// dialed over HTTP; a topology that brings its own dialer — any
// ShardTopology implementing shard.DialerProvider, such as
// ShardClients — is dialed through it.
//
//	coord, err := re2xolap.NewCoordinatorClient(
//		re2xolap.ShardURLs(
//			[]string{"http://a:8080/sparql", "http://a2:8080/sparql"},
//			[]string{"http://b:8080/sparql"},
//		),
//		re2xolap.WithDegraded(true),
//		re2xolap.WithHedge(50*time.Millisecond),
//	)
//
// The coordinator is a Client: point Bootstrap at it and the whole
// synthesis/refinement stack runs federated.
func NewCoordinatorClient(topo ShardTopology, opts ...ShardOption) (*CoordinatorClient, error) {
	dial := shard.HTTPDialer()
	if p, ok := topo.(shard.DialerProvider); ok {
		dial = p.Dialer()
	}
	return shard.NewDynamic(topo, dial, opts...)
}

// ShardURLs builds a static topology from replica URL groups:
// groups[i] lists shard i's replica endpoint URLs in preference
// order, every replica holding the identical partition i.
func ShardURLs(groups ...[]string) ShardTopology {
	return shard.Static{View: shard.TopologyView{Groups: groups}}
}

// ShardClients builds a static topology from pre-built clients (for
// in-process shards, custom transports, or tests): groups[i] lists
// shard i's replica clients in preference order.
func ShardClients(groups ...[]Client) ShardTopology {
	return shard.NewClientTopology(groups...)
}
